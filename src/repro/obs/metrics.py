"""Metrics: counters, gauges and fixed-bucket histograms with labels.

A :class:`MetricsRegistry` is the numeric half of ``repro.obs``: campaign
code increments counters, sets gauges and observes histogram samples,
and an operator exports the whole registry as a Prometheus text page or
a JSON document at any point of a run.

Design constraints (shared with the rest of the pipeline):

* **Deterministic folding.**  A registry reduces to a plain-data
  :class:`MetricsSnapshot` that merges like the pipeline's incremental
  accumulators: counters and histogram buckets add, gauges resolve by a
  logical version stamp (not wall clock), and ``merge`` is associative —
  per-worker registries folded in chunk order produce the same totals at
  any worker count (asserted by ``tests/obs/test_metrics.py``).
* **Multiprocessing safe.**  Snapshots are picklable plain dicts/lists;
  workers snapshot their private registry and ship it back with the
  chunk result, exactly like the CPA running sums.
* **Zero cost when disabled.**  :data:`NULL_METRICS` is a registry whose
  mutators are no-ops and whose ``enabled`` flag lets hot paths skip
  even the timing calls that would feed an observation.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

SNAPSHOT_SCHEMA = "rftc-obs-metrics/1"

#: Prometheus-compatible metric and label name shape.
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram bucket upper edges (seconds-scale timings).  An
#: implicit +Inf bucket always follows the last edge.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: A fully-resolved series identity: (metric name, sorted label pairs).
SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _series_key(name: str, labels: Dict[str, object]) -> SeriesKey:
    if not _NAME_RE.match(name):
        raise ConfigurationError(f"invalid metric name {name!r}")
    pairs = []
    for key in sorted(labels):
        if not _LABEL_RE.match(key):
            raise ConfigurationError(f"invalid label name {key!r}")
        pairs.append((key, str(labels[key])))
    return name, tuple(pairs)


def _check_buckets(buckets: Sequence[float]) -> Tuple[float, ...]:
    edges = tuple(float(b) for b in buckets)
    if not edges:
        raise ConfigurationError("histogram needs at least one bucket edge")
    if any(later <= earlier for later, earlier in zip(edges[1:], edges)):
        raise ConfigurationError("bucket edges must be strictly increasing")
    return edges


@dataclass
class _HistogramSeries:
    """One labeled histogram: per-bucket counts plus sum/count."""

    edges: Tuple[float, ...]
    counts: List[int]
    sum: float = 0.0
    count: int = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for position, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[position] += 1
                return
        self.counts[-1] += 1  # +Inf bucket

    def add(self, other: "_HistogramSeries") -> None:
        if other.edges != self.edges:
            raise ConfigurationError(
                "cannot merge histograms with different bucket edges"
            )
        self.sum += other.sum
        self.count += other.count
        for position, count in enumerate(other.counts):
            self.counts[position] += count


@dataclass
class MetricsSnapshot:
    """A registry frozen to plain data: picklable, mergeable, exportable.

    ``counters`` maps series key to value; ``gauges`` to ``(version,
    value)`` where ``version`` is the registry's logical set-sequence
    (merging keeps the higher version, ties keep the larger value — an
    associative, commutative rule); ``histograms`` to
    ``(edges, bucket counts incl. +Inf, sum, count)``.
    """

    counters: Dict[SeriesKey, float] = field(default_factory=dict)
    gauges: Dict[SeriesKey, Tuple[int, float]] = field(default_factory=dict)
    histograms: Dict[
        SeriesKey, Tuple[Tuple[float, ...], Tuple[int, ...], float, int]
    ] = field(default_factory=dict)

    @property
    def n_series(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """A new snapshot folding ``other`` into this one (associative)."""
        merged = MetricsSnapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            histograms=dict(self.histograms),
        )
        for key, value in other.counters.items():
            merged.counters[key] = merged.counters.get(key, 0.0) + value
        for key, stamped in other.gauges.items():
            mine = merged.gauges.get(key)
            if mine is None or stamped > mine:
                merged.gauges[key] = stamped
        for key, (edges, counts, total, count) in other.histograms.items():
            mine = merged.histograms.get(key)
            if mine is None:
                merged.histograms[key] = (edges, counts, total, count)
                continue
            if mine[0] != edges:
                raise ConfigurationError(
                    f"histogram {key[0]!r}: merge with different bucket edges"
                )
            merged.histograms[key] = (
                edges,
                tuple(a + b for a, b in zip(mine[1], counts)),
                mine[2] + total,
                mine[3] + count,
            )
        return merged

    # -- exporters -----------------------------------------------------

    def to_prometheus(self) -> str:
        """The snapshot as a Prometheus text-format page.

        Series are emitted name-sorted with ``# TYPE`` headers; histogram
        buckets follow Prometheus's cumulative ``le`` convention with the
        terminal ``+Inf`` bucket equal to ``_count``.
        """

        def fmt_labels(pairs: Iterable[Tuple[str, str]]) -> str:
            body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
            return f"{{{body}}}" if body else ""

        def fmt_value(value: float) -> str:
            return repr(int(value)) if float(value).is_integer() else repr(value)

        lines: List[str] = []
        typed: set = set()

        def header(name: str, kind: str) -> None:
            if name not in typed:
                lines.append(f"# TYPE {name} {kind}")
                typed.add(name)

        for (name, pairs), value in sorted(self.counters.items()):
            header(name, "counter")
            lines.append(f"{name}{fmt_labels(pairs)} {fmt_value(value)}")
        for (name, pairs), (_, value) in sorted(self.gauges.items()):
            header(name, "gauge")
            lines.append(f"{name}{fmt_labels(pairs)} {fmt_value(value)}")
        for (name, pairs), (edges, counts, total, count) in sorted(
            self.histograms.items()
        ):
            header(name, "histogram")
            cumulative = 0
            for edge, bucket in zip(edges, counts):
                cumulative += bucket
                le = pairs + (("le", f"{edge:g}"),)
                lines.append(f"{name}_bucket{fmt_labels(le)} {cumulative}")
            le = pairs + (("le", "+Inf"),)
            lines.append(f"{name}_bucket{fmt_labels(le)} {count}")
            lines.append(f"{name}_sum{fmt_labels(pairs)} {repr(float(total))}")
            lines.append(f"{name}_count{fmt_labels(pairs)} {count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> str:
        """The snapshot as a JSON document (inverse of :meth:`from_json`)."""
        doc = {
            "schema": SNAPSHOT_SCHEMA,
            "counters": [
                {"name": name, "labels": dict(pairs), "value": value}
                for (name, pairs), value in sorted(self.counters.items())
            ],
            "gauges": [
                {
                    "name": name,
                    "labels": dict(pairs),
                    "version": version,
                    "value": value,
                }
                for (name, pairs), (version, value) in sorted(self.gauges.items())
            ],
            "histograms": [
                {
                    "name": name,
                    "labels": dict(pairs),
                    "buckets": list(edges),
                    "counts": list(counts),
                    "sum": total,
                    "count": count,
                }
                for (name, pairs), (edges, counts, total, count) in sorted(
                    self.histograms.items()
                )
            ],
        }
        return json.dumps(doc, indent=1)

    @classmethod
    def from_json(cls, text: str) -> "MetricsSnapshot":
        """Parse a :meth:`to_json` document back into a snapshot."""
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"corrupt metrics JSON: {exc}") from exc
        if not isinstance(doc, dict) or doc.get("schema") != SNAPSHOT_SCHEMA:
            raise ConfigurationError(
                "not a metrics snapshot (expected schema "
                f"{SNAPSHOT_SCHEMA!r}, got {doc.get('schema') if isinstance(doc, dict) else type(doc).__name__!r})"
            )
        snapshot = cls()
        try:
            for entry in doc.get("counters", ()):
                key = _series_key(entry["name"], entry.get("labels", {}))
                snapshot.counters[key] = float(entry["value"])
            for entry in doc.get("gauges", ()):
                key = _series_key(entry["name"], entry.get("labels", {}))
                snapshot.gauges[key] = (
                    int(entry.get("version", 0)),
                    float(entry["value"]),
                )
            for entry in doc.get("histograms", ()):
                key = _series_key(entry["name"], entry.get("labels", {}))
                edges = _check_buckets(entry["buckets"])
                counts = tuple(int(c) for c in entry["counts"])
                if len(counts) != len(edges) + 1:
                    raise ConfigurationError(
                        f"histogram {entry['name']!r}: expected "
                        f"{len(edges) + 1} bucket counts, got {len(counts)}"
                    )
                snapshot.histograms[key] = (
                    edges, counts, float(entry["sum"]), int(entry["count"]),
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed metrics snapshot entry: {exc!r}"
            ) from exc
        return snapshot


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


class MetricsRegistry:
    """Mutable metric state: the write side of the observability layer.

    All mutators accept labels as keyword arguments::

        metrics.inc("campaign_chunks_total", phase="fresh")
        metrics.set_gauge("campaign_done_traces", 4000)
        metrics.observe("campaign_fold_seconds", 0.012)

    Histogram bucket edges are fixed at a series' first observation
    (``buckets=...`` or :data:`DEFAULT_BUCKETS`) and must match on every
    later observation and merge.
    """

    #: Hot paths test this before doing any work that only feeds metrics
    #: (e.g. ``time.perf_counter()`` pairs) — the null registry is False.
    enabled: bool = True

    def __init__(self) -> None:
        self._counters: Dict[SeriesKey, float] = {}
        self._gauges: Dict[SeriesKey, Tuple[int, float]] = {}
        self._histograms: Dict[SeriesKey, _HistogramSeries] = {}
        self._gauge_seq = 0

    # -- mutators ------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        """Add ``value`` (>= 0) to a counter series."""
        if value < 0:
            raise ConfigurationError("counters only go up")
        key = _series_key(name, labels)
        self._counters[key] = self._counters.get(key, 0.0) + float(value)

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set a gauge series to ``value`` (last set wins on merge)."""
        self._gauge_seq += 1
        self._gauges[_series_key(name, labels)] = (self._gauge_seq, float(value))

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> None:
        """Fold one sample into a fixed-bucket histogram series."""
        key = _series_key(name, labels)
        series = self._histograms.get(key)
        if series is None:
            edges = _check_buckets(buckets if buckets is not None else DEFAULT_BUCKETS)
            series = _HistogramSeries(edges=edges, counts=[0] * (len(edges) + 1))
            self._histograms[key] = series
        elif buckets is not None and _check_buckets(buckets) != series.edges:
            raise ConfigurationError(
                f"histogram {name!r} was created with different bucket edges"
            )
        series.observe(float(value))

    def observe_seconds(self, name: str, seconds: float, **labels: object) -> None:
        """Alias of :meth:`observe` that reads well at timing call sites."""
        self.observe(name, seconds, **labels)

    def ensure_histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> None:
        """Declare a histogram series without observing a sample.

        Long-lived processes (the campaign service daemon) call this at
        boot so their latency histograms appear on ``/metrics`` — with
        zero counts and ``p50=–`` in the rendered view — before the
        first sample arrives.  Declaring an existing series is a no-op,
        but the bucket edges must match.
        """
        key = _series_key(name, labels)
        series = self._histograms.get(key)
        edges = _check_buckets(buckets if buckets is not None else DEFAULT_BUCKETS)
        if series is None:
            self._histograms[key] = _HistogramSeries(
                edges=edges, counts=[0] * (len(edges) + 1)
            )
        elif series.edges != edges:
            raise ConfigurationError(
                f"histogram {name!r} was created with different bucket edges"
            )

    # -- folding / reading ---------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        """Freeze the registry to plain mergeable data (picklable)."""
        return MetricsSnapshot(
            counters=dict(self._counters),
            gauges=dict(self._gauges),
            histograms={
                key: (series.edges, tuple(series.counts), series.sum, series.count)
                for key, series in self._histograms.items()
            },
        )

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold a worker's (or another registry's) snapshot into this one."""
        for key, value in snapshot.counters.items():
            self._counters[key] = self._counters.get(key, 0.0) + value
        for key, stamped in snapshot.gauges.items():
            mine = self._gauges.get(key)
            if mine is None or stamped > mine:
                self._gauges[key] = stamped
        for key, (edges, counts, total, count) in snapshot.histograms.items():
            series = self._histograms.get(key)
            if series is None:
                self._histograms[key] = _HistogramSeries(
                    edges=edges, counts=list(counts), sum=total, count=count
                )
            else:
                series.add(
                    _HistogramSeries(
                        edges=edges, counts=list(counts), sum=total, count=count
                    )
                )

    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of one counter series (0.0 if never incremented)."""
        return self._counters.get(_series_key(name, labels), 0.0)

    def gauge_value(self, name: str, **labels: object) -> Optional[float]:
        """Current value of one gauge series (None if never set)."""
        stamped = self._gauges.get(_series_key(name, labels))
        return stamped[1] if stamped is not None else None


def quantile_from_histogram(
    edges: Sequence[float], counts: Sequence[int], q: float
) -> Optional[float]:
    """Estimate the ``q`` quantile of a fixed-bucket histogram.

    Returns the upper edge of the first bucket whose cumulative count
    reaches ``q`` of the total — the usual conservative bucketed
    estimate.  Samples in the ``+Inf`` bucket resolve to the largest
    finite edge (there is no better bound), and an **empty histogram
    returns None** rather than raising, so renderers can show ``p50=–``
    for a series that was declared but never observed.
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError("quantile must be in [0, 1]")
    edges = _check_buckets(edges)
    if len(counts) != len(edges) + 1:
        raise ConfigurationError(
            f"expected {len(edges) + 1} bucket counts, got {len(counts)}"
        )
    total = sum(counts)
    if total == 0:
        return None
    rank = q * total
    cumulative = 0
    for edge, count in zip(edges, counts):
        cumulative += count
        if cumulative >= rank and count:
            return float(edge)
    return float(edges[-1])


class NullMetricsRegistry(MetricsRegistry):
    """The disabled fast path: every mutator is a no-op.

    Instrumented code holds a registry unconditionally and calls it per
    chunk; with observability off it holds this one, whose calls cost a
    single dynamic dispatch and allocate nothing.  ``enabled`` is False
    so code can skip timing work entirely.
    """

    enabled = False

    def inc(self, name: str, value: float = 1.0, **labels: object) -> None:
        pass

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        pass

    def observe(
        self,
        name: str,
        value: float,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> None:
        pass

    def ensure_histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: object,
    ) -> None:
        pass

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        pass


#: Shared do-nothing registry for un-observed runs.
NULL_METRICS = NullMetricsRegistry()
