"""Opt-in profiling hooks for the library's hot kernels.

Two layers, both strictly opt-in (nothing here runs unless attached):

* :class:`KernelProfiler` — accumulates per-kernel call counts and
  ``perf_counter`` seconds; with ``use_cprofile=True`` it additionally
  drives one :class:`cProfile.Profile` per kernel so
  :meth:`KernelProfiler.top_functions` can name the actual hot frames.
* :func:`attach_kernels` — a context manager that wraps the three
  documented hot paths (``TraceSynthesizer.synthesize``,
  ``CpaEngine.attack``, ``ChunkedTraceStore.append``) with a profiler
  for the duration of a ``with`` block, then restores the originals.

The wrappers live *outside* the kernels so the unprofiled call path is
byte-for-byte the shipped code — profiling can never perturb a
campaign it is not watching.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

#: The documented hot kernels: profile key -> (module path, class, method).
KERNEL_HOOKS: Tuple[Tuple[str, str, str, str], ...] = (
    ("synthesize", "repro.power.synth", "TraceSynthesizer", "synthesize"),
    ("cpa_attack", "repro.attacks.cpa", "CpaEngine", "attack"),
    ("store_append", "repro.store.chunked", "ChunkedTraceStore", "append"),
)


@dataclass
class KernelStats:
    """Accumulated timing of one profiled kernel."""

    calls: int = 0
    seconds: float = 0.0
    max_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0


@dataclass
class KernelProfiler:
    """Accumulating per-kernel profiler (perf_counter, optional cProfile)."""

    use_cprofile: bool = False
    stats: Dict[str, KernelStats] = field(default_factory=dict)
    _profiles: Dict[str, cProfile.Profile] = field(default_factory=dict)

    @contextmanager
    def profile(self, name: str) -> Iterator[None]:
        """Time one call under ``name`` (nesting different names is fine).

        ``cProfile`` cannot nest enable() calls, so with ``use_cprofile``
        an inner profiled region inside an already-profiled one falls
        back to plain timing rather than raising mid-kernel.
        """
        entry = self.stats.setdefault(name, KernelStats())
        profiler = None
        if self.use_cprofile:
            profiler = self._profiles.setdefault(name, cProfile.Profile())
            try:
                profiler.enable()
            except ValueError:  # another profiler is already active
                profiler = None
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            if profiler is not None:
                profiler.disable()
            entry.calls += 1
            entry.seconds += elapsed
            entry.max_seconds = max(entry.max_seconds, elapsed)

    def wrap(self, name: str, fn):
        """``fn`` wrapped so every call runs under :meth:`profile`."""

        def profiled(*args, **kwargs):
            with self.profile(name):
                return fn(*args, **kwargs)

        profiled.__name__ = getattr(fn, "__name__", name)
        profiled.__doc__ = getattr(fn, "__doc__", None)
        profiled.__wrapped__ = fn
        return profiled

    def top_functions(self, name: str, n: int = 10) -> str:
        """The kernel's ``n`` hottest frames by cumulative time (cProfile).

        Requires ``use_cprofile=True`` and at least one profiled call.
        """
        if not self.use_cprofile:
            raise ConfigurationError(
                "top_functions needs use_cprofile=True"
            )
        profiler = self._profiles.get(name)
        if profiler is None:
            raise ConfigurationError(f"kernel {name!r} was never profiled")
        buffer = io.StringIO()
        pstats.Stats(profiler, stream=buffer).sort_stats("cumulative").print_stats(n)
        return buffer.getvalue()

    def summary(self) -> str:
        """One line per kernel: calls, total/mean/max seconds."""
        if not self.stats:
            return "no kernels profiled"
        width = max(len(name) for name in self.stats)
        lines = []
        for name in sorted(self.stats):
            entry = self.stats[name]
            lines.append(
                f"{name:{width}s}  calls {entry.calls:6d}  "
                f"total {entry.seconds:8.3f} s  "
                f"mean {entry.mean_seconds * 1e3:8.3f} ms  "
                f"max {entry.max_seconds * 1e3:8.3f} ms"
            )
        return "\n".join(lines)


@contextmanager
def attach_kernels(
    profiler: KernelProfiler,
    hooks: Optional[Tuple[Tuple[str, str, str, str], ...]] = None,
) -> Iterator[KernelProfiler]:
    """Wrap the hot kernels with ``profiler`` for the ``with`` block.

    Imports lazily so attaching (an operator action) never changes
    library import order; on exit the original unbound methods are
    restored even if the block raises.
    """
    import importlib

    installed: List[Tuple[type, str, object]] = []
    try:
        for name, module_path, class_name, method_name in (
            hooks if hooks is not None else KERNEL_HOOKS
        ):
            module = importlib.import_module(module_path)
            cls = getattr(module, class_name)
            original = getattr(cls, method_name)
            setattr(cls, method_name, profiler.wrap(name, original))
            installed.append((cls, method_name, original))
        yield profiler
    finally:
        for cls, method_name, original in reversed(installed):
            setattr(cls, method_name, original)
