"""Differential verification subsystem (``repro verify``).

The paper's security claims rest on exact equivalences the rest of the
library asserts only at hand-picked points: the RT datapath must match
table AES, streaming accumulators must match their batch counterparts at
any worker count, and every planned frequency set must survive the DRP
encode/decode round trip unchanged — a silently snapped divider changes
the completion-time histogram the whole countermeasure depends on.  This
package checks those equivalences mechanically, via six suites:

``aes``
    AES RT-model vs. table AES vs. embedded NIST/FIPS-197 vectors across
    all key sizes (:mod:`repro.verify.aes_oracle`).
``accumulators``
    Every incremental accumulator vs. its batch counterpart under
    randomized chunk/merge/snapshot-restore/replay schedules
    (:mod:`repro.verify.accumulators`, :mod:`repro.verify.schedules`).
``drp``
    ``synthesize_config -> encode_config -> decode_transactions ->
    re-synthesize`` round trips over the planner's full hardware lattice,
    including fractional ``odiv0``/``mult`` steps
    (:mod:`repro.verify.drp_oracle`).
``planner``
    Overlap-freedom re-audit of exported plans after a save/load cycle.
``drift``
    Numeric-drift sentinel: hot-path float64 reductions vs. compensated
    (``math.fsum``) references, against the committed per-kernel budgets
    in ``drift_manifest.json`` (:mod:`repro.verify.drift`).
``lint``
    AST-based repo invariants (:mod:`repro.verify.lint`).

Each suite appends :class:`CheckResult` verdicts to a shared collector;
:func:`run_suites` wraps them into a :class:`VerificationReport` the CLI
renders and CI gates on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError

#: The six suites, in the order ``repro verify`` runs them.
SUITE_NAMES = ("aes", "accumulators", "drp", "planner", "drift", "lint")


@dataclass(frozen=True)
class CheckResult:
    """One verified claim: a stable name, a verdict, and supporting detail."""

    name: str
    ok: bool
    detail: str = ""


class Checks:
    """Collector the suite modules append their verdicts to."""

    def __init__(self) -> None:
        self.results: List[CheckResult] = []

    def record(self, name: str, ok: bool, detail: str = "") -> bool:
        """Append one verdict; returns ``ok`` so callers can chain."""
        self.results.append(CheckResult(name=name, ok=bool(ok), detail=detail))
        return bool(ok)


@dataclass
class SuiteResult:
    """Outcome of one suite: its checks plus wall-clock cost."""

    name: str
    checks: List[CheckResult]
    seconds: float

    @property
    def ok(self) -> bool:
        """A suite passes only if it ran at least one check and all passed."""
        return bool(self.checks) and all(c.ok for c in self.checks)

    @property
    def n_passed(self) -> int:
        return sum(1 for c in self.checks if c.ok)

    @property
    def n_failed(self) -> int:
        return sum(1 for c in self.checks if not c.ok)

    def failures(self) -> List[CheckResult]:
        return [c for c in self.checks if not c.ok]


@dataclass
class VerificationReport:
    """All suite outcomes of one ``repro verify`` invocation."""

    suites: List[SuiteResult]

    @property
    def ok(self) -> bool:
        return bool(self.suites) and all(s.ok for s in self.suites)

    def summary(self, verbose: bool = False) -> str:
        """Human-readable report: one line per suite, failures expanded."""
        lines = []
        for suite in self.suites:
            verdict = "ok" if suite.ok else "FAIL"
            lines.append(
                f"{suite.name:<12s} {verdict:<4s} "
                f"{suite.n_passed}/{len(suite.checks)} checks "
                f"({suite.seconds:.1f} s)"
            )
            shown = suite.checks if verbose else suite.failures()
            for check in shown:
                mark = "+" if check.ok else "!"
                detail = f" — {check.detail}" if check.detail else ""
                lines.append(f"  {mark} {check.name}{detail}")
        total_failed = sum(s.n_failed for s in self.suites)
        total = sum(len(s.checks) for s in self.suites)
        verdict = "PASS" if self.ok else f"FAIL ({total_failed} failing)"
        lines.append(f"verify: {verdict} — {total} checks in "
                     f"{sum(s.seconds for s in self.suites):.1f} s")
        return "\n".join(lines)


def run_suite(
    name: str,
    seed: int = 2019,
    schedules: int = 50,
    plan_sets: int = 1024,
    drift_out: Optional[str] = None,
) -> SuiteResult:
    """Run one suite by name.  Suite modules are imported lazily."""
    if name not in SUITE_NAMES:
        raise ConfigurationError(
            f"unknown verify suite {name!r}; expected one of {SUITE_NAMES}"
        )
    started = time.perf_counter()
    checks = Checks()
    if name == "aes":
        from repro.verify.aes_oracle import run_aes_checks

        run_aes_checks(checks, seed=seed)
    elif name == "accumulators":
        from repro.verify.accumulators import run_accumulator_checks

        run_accumulator_checks(checks, seed=seed, schedules=schedules)
    elif name == "drp":
        from repro.verify.drp_oracle import run_drp_checks

        run_drp_checks(checks, seed=seed, plan_sets=plan_sets)
    elif name == "planner":
        from repro.verify.drp_oracle import run_planner_checks

        run_planner_checks(checks, seed=seed)
    elif name == "drift":
        from repro.verify.drift import run_drift_checks

        run_drift_checks(checks, manifest_out=drift_out)
    else:
        from repro.verify.lint import run_lint_checks

        run_lint_checks(checks)
    return SuiteResult(
        name=name,
        checks=checks.results,
        seconds=time.perf_counter() - started,
    )


def run_suites(
    names: Optional[Sequence[str]] = None,
    seed: int = 2019,
    schedules: int = 50,
    plan_sets: int = 1024,
    drift_out: Optional[str] = None,
) -> VerificationReport:
    """Run the named suites (all six by default) into one report."""
    selected = tuple(names) if names else SUITE_NAMES
    return VerificationReport(
        suites=[
            run_suite(
                name,
                seed=seed,
                schedules=schedules,
                plan_sets=plan_sets,
                drift_out=drift_out,
            )
            for name in selected
        ]
    )


__all__ = [
    "CheckResult",
    "Checks",
    "SuiteResult",
    "VerificationReport",
    "SUITE_NAMES",
    "run_suite",
    "run_suites",
]
