"""DRP codec and planner differential oracles.

The countermeasure's whole security argument assumes the frequency the
planner chose is the frequency the MMCM actually runs at.  Two suites pin
that chain down:

* ``drp`` — ``synthesize_config -> encode_config -> decode_transactions
  -> re-synthesize`` must be the identity over hand-picked boundary
  configurations (fractional mult/odiv0 extremes, the 126 divider cap,
  phase delay fields, non-default device specs) *and* over every set of a
  full overlap-free plan on the hardware lattice.
* ``planner`` — an exported plan (``save_plan``/``load_plan``, COE ROM
  image) must survive the round trip bit-for-bit and still audit as
  overlap-free afterwards.
"""

from __future__ import annotations

import os
import tempfile
from typing import List, Tuple

import numpy as np

from repro.hw.drp import decode_transactions, encode_config
from repro.hw.mmcm import (
    KINTEX7_SPEC,
    VIRTEX7_3_SPEC,
    MmcmConfig,
    OutputDivider,
    synthesize_config,
)
from repro.rftc.config import RFTCParams
from repro.rftc.export import (
    load_plan,
    parse_coe,
    plan_to_rom_words,
    save_plan,
    write_coe,
)
from repro.rftc.planner import plan_overlap_free
from repro.verify import Checks


def _roundtrip(config: MmcmConfig) -> MmcmConfig:
    return decode_transactions(
        encode_config(config),
        f_in_mhz=config.f_in_mhz,
        n_outputs=len(config.outputs),
        spec=config.spec,
    )


def _boundary_configs() -> List[Tuple[str, MmcmConfig]]:
    """Hand-picked configurations at the codec's encoding extremes."""
    cases: List[Tuple[str, MmcmConfig]] = [
        # Minimum multiplier needs a high reference to reach the VCO floor.
        (
            "mult-min",
            MmcmConfig(
                f_in_mhz=300.0,
                mult=2.0,
                divclk=1,
                outputs=(OutputDivider(divide=1.0),),
            ),
        ),
        # Maximum multiplier: 24 MHz * 64 needs divclk 2 to stay in range.
        (
            "mult-max",
            MmcmConfig(
                f_in_mhz=24.0,
                mult=64.0,
                divclk=2,
                outputs=(OutputDivider(divide=2.0),),
            ),
        ),
        # Integer output divider at the 6+6-bit HIGH/LOW cap of 126.
        (
            "odiv-126",
            MmcmConfig(
                f_in_mhz=24.0,
                mult=32.0,
                divclk=1,
                outputs=(OutputDivider(divide=4.0), OutputDivider(divide=126.0)),
            ),
        ),
        # Phase using only PHASE_MUX (sub-cycle) on an integer output.
        (
            "phase-mux",
            MmcmConfig(
                f_in_mhz=24.0,
                mult=32.0,
                divclk=1,
                outputs=(
                    OutputDivider(divide=8.0),
                    OutputDivider(divide=8.0, phase_degrees=45.0 / 8.0 * 3),
                ),
            ),
        ),
        # Phase spilling into the whole-VCO-cycle DELAY_TIME field.
        (
            "phase-delay-field",
            MmcmConfig(
                f_in_mhz=24.0,
                mult=32.0,
                divclk=1,
                outputs=(
                    OutputDivider(divide=16.0),
                    OutputDivider(divide=16.0, phase_degrees=90.0),
                ),
            ),
        ),
        # Non-default device spec: VCO 1500 MHz is only legal on the -3
        # grade, so decoding against the wrong spec would reject it.
        (
            "virtex7-3-vco1500",
            MmcmConfig(
                f_in_mhz=24.0,
                mult=62.5,
                divclk=1,
                outputs=(OutputDivider(divide=3.0),),
                spec=VIRTEX7_3_SPEC,
            ),
        ),
    ]
    # Fractional multiplier sweep: every 1/8 step within one mult.
    for k in range(8):
        mult = 25.0 + k / 8.0
        cases.append(
            (
                f"mult-frac-{k}/8",
                MmcmConfig(
                    f_in_mhz=24.0,
                    mult=mult,
                    divclk=1,
                    outputs=(OutputDivider(divide=2.0),),
                ),
            )
        )
    # Fractional CLKOUT0 sweep: every 1/8 step within one divider.
    for k in range(8):
        divide = 2.0 + k / 8.0
        cases.append(
            (
                f"odiv0-frac-{k}/8",
                MmcmConfig(
                    f_in_mhz=24.0,
                    mult=32.0,
                    divclk=1,
                    outputs=(OutputDivider(divide=divide),),
                ),
            )
        )
    return cases


def run_drp_checks(
    checks: Checks, seed: int = 2019, plan_sets: int = 1024
) -> None:
    """Append the DRP codec oracle's verdicts to ``checks``."""
    # --- boundary register images -------------------------------------
    for label, config in _boundary_configs():
        decoded = _roundtrip(config)
        checks.record(
            f"boundary:{label}",
            decoded == config,
            f"decoded {decoded.mult}x/{decoded.divclk} "
            f"{[o.divide for o in decoded.outputs]}, expected "
            f"{config.mult}x/{config.divclk} "
            f"{[o.divide for o in config.outputs]}",
        )

    # --- synthesized configurations for random targets ----------------
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xD29]))
    synth_failures: List[str] = []
    for trial in range(24):
        m = int(rng.integers(1, 4))
        targets = sorted(rng.uniform(12.0, 48.0, size=m), reverse=True)
        config = synthesize_config(24.0, list(targets), spec=KINTEX7_SPEC)
        decoded = _roundtrip(config)
        if decoded != config:
            synth_failures.append(f"trial {trial}: targets {targets}")
        elif decoded.output_freqs_mhz() != config.output_freqs_mhz():
            synth_failures.append(f"trial {trial}: frequency drift")
    checks.record(
        "synthesized:roundtrip",
        not synth_failures,
        "; ".join(synth_failures[:3])
        or "24 randomized synthesize->encode->decode round trips identical",
    )

    # --- every set of a full hardware-lattice plan --------------------
    params = RFTCParams(p_configs=plan_sets)
    plan = plan_overlap_free(
        params, rng=np.random.default_rng(np.random.SeedSequence([seed, 0x91A]))
    )
    configs = plan.to_mmcm_configs()
    mismatches = 0
    freq_err = 0.0
    for index, config in enumerate(configs):
        decoded = _roundtrip(config)
        if decoded != config:
            mismatches += 1
            continue
        planned = plan.sets_mhz[index]
        got = np.array(decoded.output_freqs_mhz())
        freq_err = max(
            freq_err, float(np.abs(got - planned).max() / planned.max())
        )
    checks.record(
        f"plan-roundtrip:identity:{len(configs)}-sets",
        mismatches == 0,
        f"{mismatches} of {len(configs)} sets failed the register round trip",
    )
    checks.record(
        "plan-roundtrip:frequencies",
        freq_err <= 1e-12,
        f"max relative frequency error {freq_err:.3e} vs planned sets",
    )
    # The lattice claim covers the fractional paths only if the plan
    # actually used them — assert coverage rather than assuming it.
    mults = [hs.mult for hs in plan.hardware_settings]
    odiv0s = [hs.odivs[0] for hs in plan.hardware_settings]
    checks.record(
        "plan-roundtrip:fractional-coverage",
        any(m % 1.0 for m in mults) and any(d % 1.0 for d in odiv0s),
        f"{sum(1 for m in mults if m % 1.0)} fractional mults, "
        f"{sum(1 for d in odiv0s if d % 1.0)} fractional CLKOUT0 dividers",
    )


def run_planner_checks(checks: Checks, seed: int = 2019) -> None:
    """Append the exported-plan re-audit's verdicts to ``checks``."""
    params = RFTCParams(m_outputs=2, p_configs=256)
    plan = plan_overlap_free(
        params, rng=np.random.default_rng(np.random.SeedSequence([seed, 0x91B]))
    )
    checks.record(
        "plan:overlap-free",
        plan.duplicate_count() == 0,
        f"{plan.duplicate_count()} completion-time collisions at "
        f"{plan.tolerance_ns} ns",
    )

    with tempfile.TemporaryDirectory() as tmp:
        plan_path = os.path.join(tmp, "plan.json")
        save_plan(plan, plan_path)
        loaded = load_plan(plan_path)

        checks.record(
            "export:sets-bit-identical",
            bool(np.array_equal(loaded.sets_mhz, plan.sets_mhz)),
            "save_plan/load_plan preserves every planned frequency exactly",
        )
        checks.record(
            "export:provenance",
            loaded.method == plan.method
            and loaded.tolerance_ns == plan.tolerance_ns
            and loaded.params == plan.params
            and loaded.hardware_settings == plan.hardware_settings,
            "method/tolerance/params/hardware settings survive the round trip",
        )
        checks.record(
            "export:completion-table",
            bool(
                np.array_equal(
                    loaded.completion_table_ns(), plan.completion_table_ns()
                )
            ),
            "completion table recomputed from the loaded plan is bit-equal",
        )
        checks.record(
            "export:re-audit-overlap-free",
            loaded.duplicate_count() == plan.duplicate_count() == 0,
            f"loaded plan audits {loaded.duplicate_count()} collisions",
        )

        words = plan_to_rom_words(plan)
        checks.record(
            "export:rom-words",
            bool(np.array_equal(plan_to_rom_words(loaded), words)),
            "ROM image regenerated from the loaded plan is identical",
        )
        coe_path = os.path.join(tmp, "plan.coe")
        write_coe(plan, coe_path)
        checks.record(
            "export:coe-roundtrip",
            bool(np.array_equal(parse_coe(coe_path), words)),
            "COE file parses back to the exact ROM words",
        )
