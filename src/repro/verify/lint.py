"""AST-based repository invariants (`repro verify --suite lint`).

Five mechanical rules that guard reproducibility and operability:

* **no-global-np-random** — ``src/`` must never touch numpy's global
  random state (``np.random.seed``, ``np.random.normal``, ...); only the
  explicit generator API (``default_rng``/``Generator``/``SeedSequence``)
  is allowed, so every experiment stays replayable from its seed.
* **no-unseeded-default-rng** — the explicit-generator API must itself
  be seeded: a zero-argument ``default_rng()`` call seeds from the OS
  entropy pool, so a ``rng=None`` fallback built on it silently makes a
  result irreplayable (the ``success_rate_curve`` bug this rule grew
  from).  Rule is syntactic: it flags literal zero-argument calls, not
  ``default_rng(maybe_none)`` flowing ``None`` at runtime.
* **consumer-protocol** — every trace consumer (a class with both
  ``consume`` and ``result`` methods) must also implement the full
  checkpoint/shard contract: ``snapshot``, ``restore`` and ``merge``.
* **metrics-documented** — every metric name emitted through
  ``inc``/``observe``/``set_gauge``/``observe_seconds`` with a literal
  name must be listed in ``docs/observability.md``.
* **cli-exit-codes** — every ``_cmd_*`` handler in ``repro.cli`` must
  return an explicit integer on every path (no bare ``return``, no
  falling off the end), so shell callers always get a real exit code.

The rules work on the AST, not on text, so docstrings and comments can
mention ``np.random.seed`` freely.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional, Tuple

from repro.verify import Checks

#: The only attributes of ``np.random`` the codebase may use: the modern
#: explicit-generator API, which never mutates process-global state.
ALLOWED_NP_RANDOM_ATTRS = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64"}
)

#: Methods every trace consumer must implement besides consume/result.
CONSUMER_REQUIRED_METHODS = ("snapshot", "restore", "merge")

#: Metric-emitting call names whose first literal argument is a metric name.
METRIC_CALL_ATTRS = frozenset(
    {"inc", "observe", "set_gauge", "observe_seconds"}
)


def _is_np_random(node: ast.AST) -> bool:
    """True for ``np.random`` / ``numpy.random`` attribute bases."""
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "random"
        and isinstance(node.value, ast.Name)
        and node.value.id in ("np", "numpy")
    )


def find_global_random(tree: ast.AST, filename: str) -> List[str]:
    """Uses of numpy's global random state (banned in ``src/``)."""
    violations = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and _is_np_random(node.value)
            and node.attr not in ALLOWED_NP_RANDOM_ATTRS
        ):
            violations.append(
                f"{filename}:{node.lineno} np.random.{node.attr}"
            )
    return violations


def find_unseeded_default_rng(tree: ast.AST, filename: str) -> List[str]:
    """Zero-argument ``default_rng()`` calls (nondeterministic by default).

    Matches both the attribute form (``np.random.default_rng()``) and a
    bare imported name (``default_rng()``).  Any argument — even an
    explicit ``None`` — passes: the rule targets the *silent* unseeded
    fallback idiom, and runtime ``None`` flow is out of AST reach.
    """
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call) or node.args or node.keywords:
            continue
        func = node.func
        unseeded = (
            isinstance(func, ast.Attribute)
            and func.attr == "default_rng"
            and _is_np_random(func.value)
        ) or (isinstance(func, ast.Name) and func.id == "default_rng")
        if unseeded:
            violations.append(
                f"{filename}:{node.lineno} default_rng() without a seed"
            )
    return violations


def find_incomplete_consumers(tree: ast.AST, filename: str) -> List[str]:
    """Consumer-shaped classes missing part of the checkpoint contract."""
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "consume" not in methods or "result" not in methods:
            continue
        missing = [m for m in CONSUMER_REQUIRED_METHODS if m not in methods]
        if missing:
            violations.append(
                f"{filename}:{node.lineno} {node.name} lacks "
                f"{'/'.join(missing)}"
            )
    return violations


def find_metric_names(tree: ast.AST) -> List[Tuple[str, int]]:
    """Literal metric names passed to inc/observe/set_gauge calls."""
    names = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in METRIC_CALL_ATTRS
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            names.append((node.args[0].value, node.lineno))
    return names


def _always_returns_value(body: List[ast.stmt]) -> bool:
    """True when every path through ``body`` ends in return-with-value or raise."""
    if not body:
        return False
    last = body[-1]
    if isinstance(last, ast.Return):
        return last.value is not None
    if isinstance(last, ast.Raise):
        return True
    if isinstance(last, ast.If):
        return (
            bool(last.orelse)
            and _always_returns_value(last.body)
            and _always_returns_value(last.orelse)
        )
    if isinstance(last, ast.Try):
        handlers_ok = all(
            _always_returns_value(h.body) for h in last.handlers
        )
        if last.finalbody and _always_returns_value(last.finalbody):
            return True
        body_ok = _always_returns_value(last.orelse or last.body)
        return body_ok and handlers_ok
    if isinstance(last, (ast.With, ast.For, ast.While)):
        # Conservative: a trailing loop/with must be followed by a return,
        # so reaching here means the handler can fall off the end.
        return False
    return False


def find_cli_exit_violations(tree: ast.AST, filename: str) -> List[str]:
    """``_cmd_*`` handlers that can exit without an explicit return code."""
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        if not node.name.startswith("_cmd_"):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Return) and sub.value is None:
                violations.append(
                    f"{filename}:{sub.lineno} {node.name} has a bare return"
                )
            elif (
                isinstance(sub, ast.Return)
                and isinstance(sub.value, ast.Constant)
                and sub.value.value is None
            ):
                violations.append(
                    f"{filename}:{sub.lineno} {node.name} returns None"
                )
        if not _always_returns_value(node.body):
            violations.append(
                f"{filename}:{node.lineno} {node.name} can fall off the "
                "end without returning an exit code"
            )
    return violations


def run_lint_checks(checks: Checks, src_root: Optional[str] = None) -> None:
    """Append the repo-lint verdicts to ``checks``."""
    root = (
        Path(src_root) if src_root else Path(__file__).resolve().parents[2]
    )
    repo_root = root.parent
    files = sorted(root.rglob("*.py"))
    trees = {}
    parse_errors = []
    for path in files:
        try:
            trees[path] = ast.parse(path.read_text(), filename=str(path))
        except SyntaxError as exc:
            parse_errors.append(f"{path}: {exc}")
    checks.record(
        "lint:parse",
        bool(trees) and not parse_errors,
        "; ".join(parse_errors[:3]) or f"parsed {len(trees)} files",
    )

    random_violations: List[str] = []
    unseeded_violations: List[str] = []
    consumer_violations: List[str] = []
    metric_names: List[Tuple[str, str, int]] = []
    cli_violations: List[str] = []
    for path, tree in trees.items():
        rel = str(path.relative_to(repo_root))
        random_violations.extend(find_global_random(tree, rel))
        unseeded_violations.extend(find_unseeded_default_rng(tree, rel))
        consumer_violations.extend(find_incomplete_consumers(tree, rel))
        for name, lineno in find_metric_names(tree):
            metric_names.append((name, rel, lineno))
        if path.name == "cli.py":
            cli_violations.extend(find_cli_exit_violations(tree, rel))

    checks.record(
        "lint:no-global-np-random",
        not random_violations,
        "; ".join(random_violations[:5])
        or "no numpy global-random-state use in src/",
    )
    checks.record(
        "lint:no-unseeded-default-rng",
        not unseeded_violations,
        "; ".join(unseeded_violations[:5])
        or "every default_rng() call in src/ carries a seed",
    )
    checks.record(
        "lint:consumer-protocol",
        not consumer_violations,
        "; ".join(consumer_violations[:5])
        or "every consumer implements snapshot/restore/merge",
    )

    doc_path = repo_root / "docs" / "observability.md"
    if not doc_path.exists():
        checks.record(
            "lint:metrics-documented", False, f"{doc_path} is missing"
        )
    else:
        doc_text = doc_path.read_text()
        undocumented = [
            f"{rel}:{lineno} {name!r}"
            for name, rel, lineno in metric_names
            if name not in doc_text
        ]
        checks.record(
            "lint:metrics-documented",
            not undocumented,
            "; ".join(undocumented[:5])
            or f"{len(metric_names)} emitted metric names all listed in "
            "docs/observability.md",
        )

    checks.record(
        "lint:cli-exit-codes",
        not cli_violations,
        "; ".join(cli_violations[:5])
        or "every _cmd_* handler returns an explicit exit code on all paths",
    )
