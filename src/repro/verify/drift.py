"""Numeric-drift sentinel: hot-path reductions vs. compensated references.

The CPA/TVLA kernels compute correlations from naive float64 running sums
(``sum_t2 - sum_t**2/n`` style), which lose digits to cancellation as the
trace count grows.  This suite recomputes each kernel's output with
compensated summation (``math.fsum``, exact until the final rounding) on a
fixed seeded workload and asserts the observed drift stays inside the
per-kernel budgets committed in ``drift_manifest.json``.  The budgets sit
~two orders of magnitude above the measured drift, so the suite only
fires on a real regression (a reordered reduction, a dtype downcast, a
"harmless" refactor of the sums) — not on FP noise.

Pass ``manifest_out`` to also write the observed values next to the
budgets, which CI uploads as an artifact for trend inspection.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.attacks.incremental import IncrementalCpa, IncrementalCpaBank
from repro.attacks.models import last_round_hd_predictions
from repro.hw.clock import ClockSchedule
from repro.leakage_assessment.tvla import IncrementalTvla
from repro.power.synth import TraceSynthesizer
from repro.rftc.completion import enumerate_compositions
from repro.rftc.config import RFTCParams
from repro.rftc.planner import FrequencyPlan
from repro.utils.stats import RunningMoments, column_pearson, welch_t
from repro.verify import Checks

MANIFEST_PATH = Path(__file__).parent / "drift_manifest.json"

#: The workload is pinned — budgets in the manifest are calibrated to it.
_SEED = 2019
_N_TRACES = 2000
_N_SAMPLES = 6
_N_HYPOTHESES = 16  # correlation rows compared against the fsum reference


def _fsum_pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson via compensated sums (exact up to one final rounding each)."""
    n = len(x)
    mx = math.fsum(x) / n
    my = math.fsum(y) / n
    cov = math.fsum((xi - mx) * (yi - my) for xi, yi in zip(x, y))
    vx = math.fsum((xi - mx) ** 2 for xi in x)
    vy = math.fsum((yi - my) ** 2 for yi in y)
    denom = math.sqrt(vx * vy)
    return cov / denom if denom > 0.0 else 0.0


def _fsum_welch_t(a_col: np.ndarray, b_col: np.ndarray) -> float:
    na, nb = len(a_col), len(b_col)
    ma = math.fsum(a_col) / na
    mb = math.fsum(b_col) / nb
    va = math.fsum((x - ma) ** 2 for x in a_col) / (na - 1)
    vb = math.fsum((x - mb) ** 2 for x in b_col) / (nb - 1)
    denom = math.sqrt(va / na + vb / nb)
    diff = ma - mb
    if denom > 0.0:
        return diff / denom
    return 0.0 if diff == 0.0 else math.copysign(math.inf, diff)


def measure_drift() -> Dict[str, float]:
    """Max |kernel - compensated reference| per kernel, on the pinned load."""
    rng = np.random.default_rng(np.random.SeedSequence([_SEED, 0xD81F]))
    traces = rng.normal(50.0, 6.0, size=(_N_TRACES, _N_SAMPLES))
    data = rng.integers(0, 256, size=(_N_TRACES, 16), dtype=np.uint8)
    predictions = last_round_hd_predictions(data, 0).astype(np.float64)

    ref = np.empty((_N_HYPOTHESES, _N_SAMPLES))
    for h in range(_N_HYPOTHESES):
        for s in range(_N_SAMPLES):
            ref[h, s] = _fsum_pearson(predictions[:, h], traces[:, s])

    drift: Dict[str, float] = {}

    batch = column_pearson(predictions, traces)
    drift["column_pearson"] = float(
        np.abs(batch[:_N_HYPOTHESES] - ref).max()
    )

    acc = IncrementalCpa(byte_index=0)
    for lo in range(0, _N_TRACES, 250):
        acc.update(traces[lo : lo + 250], data[lo : lo + 250])
    drift["incremental_cpa_correlation"] = float(
        np.abs(acc.correlation()[:_N_HYPOTHESES] - ref).max()
    )

    fixed = rng.normal(48.0, 5.0, size=(_N_TRACES, _N_SAMPLES))
    random_ = rng.normal(50.0, 5.0, size=(_N_TRACES, _N_SAMPLES))
    t_ref = np.array(
        [
            _fsum_welch_t(fixed[:, s], random_[:, s])
            for s in range(_N_SAMPLES)
        ]
    )
    drift["welch_t"] = float(np.abs(welch_t(fixed, random_) - t_ref).max())

    inc = IncrementalTvla()
    for lo in range(0, _N_TRACES, 250):
        inc.update_fixed(fixed[lo : lo + 250])
        inc.update_random(random_[lo : lo + 250])
    drift["incremental_tvla_t"] = float(
        np.abs(inc.result().t_values - t_ref).max()
    )

    moments = RunningMoments()
    for lo in range(0, _N_TRACES, 250):
        moments.update(traces[lo : lo + 250])
    mean_ref = np.array(
        [math.fsum(traces[:, s]) / _N_TRACES for s in range(_N_SAMPLES)]
    )
    var_ref = np.array(
        [
            math.fsum((x - mean_ref[s]) ** 2 for x in traces[:, s])
            / (_N_TRACES - 1)
            for s in range(_N_SAMPLES)
        ]
    )
    drift["running_moments"] = max(
        float(np.abs(moments.mean - mean_ref).max()),
        float(np.abs(moments.variance - var_ref).max()),
    )

    freqs = rng.uniform(12.0, 48.0, size=(64, 3))
    plan = FrequencyPlan(
        params=RFTCParams(m_outputs=3, p_configs=64),
        sets_mhz=freqs,
        method="naive-grid",
    )
    table = plan.completion_table_ns()
    periods = 1000.0 / freqs
    comps = enumerate_compositions(3, 10).astype(np.float64)
    table_ref = np.array(
        [
            [
                math.fsum(p * c for p, c in zip(periods[i], comps[j]))
                for j in range(comps.shape[0])
            ]
            for i in range(freqs.shape[0])
        ]
    )
    drift["completion_table"] = float(np.abs(table - table_ref).max())

    # float32 opt-in kernels (CampaignSpec dtype="float32"): same pinned
    # workloads with the traces narrowed to float32; the references stay
    # the float64 compensated ones, so these budgets bound the *total*
    # cost of the opt-in — rounding on entry plus any fast-path
    # accumulation in float32 — not just a cast.
    traces32 = traces.astype(np.float32)

    acc32 = IncrementalCpa(byte_index=0)
    for lo in range(0, _N_TRACES, 250):
        acc32.update(traces32[lo : lo + 250], data[lo : lo + 250])
    drift["incremental_cpa_correlation_float32"] = float(
        np.abs(acc32.correlation()[:_N_HYPOTHESES] - ref).max()
    )

    bank32 = IncrementalCpaBank(byte_indices=(0,))
    for lo in range(0, _N_TRACES, 250):
        bank32.update(traces32[lo : lo + 250], data[lo : lo + 250])
    drift["incremental_cpa_bank_float32"] = float(
        np.abs(bank32.correlation()[0, :_N_HYPOTHESES] - ref).max()
    )

    periods = rng.uniform(20.0, 40.0, size=(64, 11))
    schedule = ClockSchedule(
        periods_ns=periods,
        is_real_cycle=np.ones((64, 11), dtype=bool),
        n_cycles=np.full(64, 11, dtype=np.int64),
        real_cycle_positions=np.tile(np.arange(11), (64, 1)),
    )
    amplitudes = rng.uniform(0.0, 8.0, size=(64, 11))
    rendered = {
        dtype: TraceSynthesizer(n_samples=128, dtype=dtype).synthesize(
            schedule, amplitudes
        )
        for dtype in ("float64", "float32")
    }
    drift["synthesize_float32"] = float(
        np.abs(rendered["float32"].astype(np.float64) - rendered["float64"]).max()
    )
    return drift


def load_manifest() -> Dict[str, float]:
    payload = json.loads(MANIFEST_PATH.read_text())
    return {k: float(v) for k, v in payload["budgets"].items()}


def run_drift_checks(
    checks: Checks, manifest_out: Optional[str] = None
) -> None:
    """Append the drift sentinel's verdicts to ``checks``."""
    budgets = load_manifest()
    observed = measure_drift()

    checks.record(
        "manifest:kernels",
        sorted(budgets) == sorted(observed),
        f"manifest budgets {sorted(budgets)} vs measured {sorted(observed)}",
    )
    for kernel in sorted(observed):
        budget = budgets.get(kernel)
        if budget is None:
            continue  # already flagged by manifest:kernels
        checks.record(
            f"drift:{kernel}",
            observed[kernel] <= budget,
            f"observed {observed[kernel]:.3e}, budget {budget:.0e}",
        )

    if manifest_out:
        Path(manifest_out).write_text(
            json.dumps(
                {
                    "format": "repro-drift-manifest-v1",
                    "budgets": budgets,
                    "observed": observed,
                },
                indent=1,
            )
        )
