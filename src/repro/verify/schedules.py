"""Seeded schedule generator for the accumulator oracle.

A *schedule* is a randomized but reproducible plan for exercising a
streaming accumulator over a fixed chunk partition of a data set.  Two
families are generated:

* **Replay schedules** interleave chunk folds with ``snapshot`` /
  ``restore`` operations, rewinding and re-folding random spans.  Because
  snapshot/restore is specified to be exact, any replay schedule must
  leave the accumulator *bit-identical* to the plain sequential fold of
  the same chunks — no tolerance.
* **Merge schedules** assign chunks to shards at random (some shards may
  legitimately end up empty), fold each shard independently, and merge
  the shards in a random order.  Counts must agree exactly; floating
  moments may differ from the sequential fold only by summation-order
  rounding, which the oracle bounds tightly against the batch reference.

Schedules are pure data (tuples of primitive ops), so the oracle and the
test suite can share one generator and log failing schedules verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Replay-schedule op codes: ("snapshot",), ("restore",), ("feed", chunk),
#: ("feed_empty",).  ``restore`` rewinds to the most recent snapshot.
ReplayOp = Tuple


@dataclass(frozen=True)
class ReplaySchedule:
    """Snapshot/restore/replay plan equivalent to one sequential fold."""

    n_chunks: int
    ops: Tuple[ReplayOp, ...]


@dataclass(frozen=True)
class MergeSchedule:
    """Random shard assignment plus the order the shards are merged in."""

    n_chunks: int
    shard_of: Tuple[int, ...]  # shard id per chunk
    merge_order: Tuple[int, ...]  # permutation of shard ids


def chunk_bounds(
    n_rows: int, n_chunks: int, rng: np.random.Generator
) -> Tuple[Tuple[int, int], ...]:
    """Randomized contiguous partition of ``n_rows`` into ``n_chunks``.

    Every chunk holds at least one row, so chunk emptiness is exercised
    only through the explicit ``feed_empty`` ops / empty shards — keeping
    the two edge cases distinguishable in failure reports.
    """
    if n_chunks < 1 or n_rows < n_chunks:
        raise ConfigurationError("need 1 <= n_chunks <= n_rows")
    cuts = np.sort(
        rng.choice(np.arange(1, n_rows), size=n_chunks - 1, replace=False)
    )
    edges = np.concatenate(([0], cuts, [n_rows]))
    return tuple((int(a), int(b)) for a, b in zip(edges[:-1], edges[1:]))


def generate_replay_schedule(
    rng: np.random.Generator, n_chunks: int, max_rewinds: int = 3
) -> ReplaySchedule:
    """Draw one replay schedule whose net effect is the sequential fold."""
    if n_chunks < 1:
        raise ConfigurationError("n_chunks must be >= 1")
    ops = []
    position = 0
    snapshot_at = None
    rewinds = 0
    while position < n_chunks:
        if snapshot_at is None or rng.random() < 0.35:
            ops.append(("snapshot",))
            snapshot_at = position
        if rng.random() < 0.25:
            ops.append(("feed_empty",))
        span = min(n_chunks - position, int(rng.integers(1, 4)))
        for chunk in range(position, position + span):
            ops.append(("feed", chunk))
        position += span
        if (
            rewinds < max_rewinds
            and position < n_chunks
            and rng.random() < 0.4
        ):
            ops.append(("restore",))
            position = snapshot_at
            rewinds += 1
    return ReplaySchedule(n_chunks=n_chunks, ops=tuple(ops))


def generate_merge_schedule(
    rng: np.random.Generator, n_chunks: int
) -> MergeSchedule:
    """Draw one merge schedule: random sharding, random merge order."""
    if n_chunks < 1:
        raise ConfigurationError("n_chunks must be >= 1")
    n_shards = int(rng.integers(2, 6))
    shard_of = tuple(int(s) for s in rng.integers(0, n_shards, size=n_chunks))
    merge_order = tuple(int(s) for s in rng.permutation(n_shards))
    return MergeSchedule(
        n_chunks=n_chunks, shard_of=shard_of, merge_order=merge_order
    )
