"""AES differential oracle: RT model vs. table AES vs. FIPS-197 vectors.

Three independent implementations of the cipher live in this library —
the byte-oriented reference (:mod:`repro.crypto.aes`), the vectorized
batch schedule/round-state kernels, and the register-transfer datapath
model whose Hamming distances feed every synthesized trace.  This oracle
pins all of them to the official FIPS-197 test vectors and to each
other, across every key size the standard defines.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.aes import (
    AES,
    aes128_decrypt,
    aes128_encrypt,
    batch_expand_key,
    expand_key,
)
from repro.crypto.datapath import AesDatapath, batch_round_states
from repro.verify import Checks

#: FIPS-197 Appendix C "Example Vectors": (key, plaintext, ciphertext) hex.
FIPS197_APPENDIX_C = (
    (
        "aes-128",
        "000102030405060708090a0b0c0d0e0f",
        "00112233445566778899aabbccddeeff",
        "69c4e0d86a7b0430d8cdb78070b4c55a",
    ),
    (
        "aes-192",
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "00112233445566778899aabbccddeeff",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        "aes-256",
        "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
        "00112233445566778899aabbccddeeff",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
)

#: FIPS-197 Appendix B worked example (the Rijndael paper's vector).
APPENDIX_B_KEY = "2b7e151628aed2a6abf7158809cf4f3c"
APPENDIX_B_PLAINTEXT = "3243f6a8885a308d313198a2e0370734"
APPENDIX_B_CIPHERTEXT = "3925841d02dc09fbdc118597196a0b32"

#: FIPS-197 Appendix A.1: final round key of the Appendix B key schedule.
APPENDIX_A1_LAST_ROUND_KEY = "d014f9a8c9ee2589e13f0cc8b6630ca6"


def run_aes_checks(checks: Checks, seed: int = 2019) -> None:
    """Append the AES oracle's verdicts to ``checks``."""
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xAE5]))

    # --- embedded NIST/FIPS-197 vectors, all key sizes ------------------
    for label, key_hex, pt_hex, ct_hex in FIPS197_APPENDIX_C:
        key = bytes.fromhex(key_hex)
        pt = bytes.fromhex(pt_hex)
        ct = bytes.fromhex(ct_hex)
        cipher = AES(key)
        got_ct = cipher.encrypt(pt)
        got_pt = cipher.decrypt(ct)
        checks.record(
            f"fips197:{label}:encrypt",
            got_ct == ct,
            f"got {got_ct.hex()}, expected {ct_hex}",
        )
        checks.record(
            f"fips197:{label}:decrypt",
            got_pt == pt,
            f"got {got_pt.hex()}, expected {pt_hex}",
        )

    b_key = bytes.fromhex(APPENDIX_B_KEY)
    got = aes128_encrypt(b_key, bytes.fromhex(APPENDIX_B_PLAINTEXT))
    checks.record(
        "fips197:appendix-b:encrypt",
        got == bytes.fromhex(APPENDIX_B_CIPHERTEXT),
        f"got {got.hex()}, expected {APPENDIX_B_CIPHERTEXT}",
    )
    last_rk = expand_key(b_key)[-1]
    checks.record(
        "fips197:appendix-a1:last-round-key",
        last_rk == bytes.fromhex(APPENDIX_A1_LAST_ROUND_KEY),
        f"got {last_rk.hex()}, expected {APPENDIX_A1_LAST_ROUND_KEY}",
    )

    # --- encrypt/decrypt round trips on random blocks, all key sizes ----
    for key_len in (16, 24, 32):
        key = bytes(rng.integers(0, 256, size=key_len, dtype=np.uint8))
        cipher = AES(key)
        blocks = rng.integers(0, 256, size=(32, 16), dtype=np.uint8)
        ok = all(
            cipher.decrypt(cipher.encrypt(bytes(b))) == bytes(b)
            for b in blocks
        )
        checks.record(
            f"roundtrip:aes-{key_len * 8}",
            ok,
            "decrypt(encrypt(x)) == x over 32 random blocks",
        )

    # --- vectorized key schedule vs. the reference schedule -------------
    keys = rng.integers(0, 256, size=(128, 16), dtype=np.uint8)
    batch_rk = batch_expand_key(keys)
    ref_rk = np.array(
        [[list(rk) for rk in expand_key(bytes(k))] for k in keys],
        dtype=np.uint8,
    )
    checks.record(
        "batch-expand-key:vs-reference",
        bool(np.array_equal(batch_rk, ref_rk)),
        "128 random AES-128 keys, byte-identical schedules",
    )

    # --- vectorized round states vs. the reference cipher ---------------
    shared_key = bytes(rng.integers(0, 256, size=16, dtype=np.uint8))
    pts = rng.integers(0, 256, size=(48, 16), dtype=np.uint8)
    batch_states = batch_round_states(
        np.frombuffer(shared_key, dtype=np.uint8), pts
    )
    cipher = AES(shared_key)
    ref_states = np.array(
        [[list(s) for s in cipher.round_states(bytes(p))] for p in pts],
        dtype=np.uint8,
    )
    checks.record(
        "batch-round-states:shared-key",
        bool(np.array_equal(batch_states, ref_states)),
        "48 encryptions, all 11 round registers byte-identical",
    )

    per_keys = rng.integers(0, 256, size=(24, 16), dtype=np.uint8)
    per_pts = rng.integers(0, 256, size=(24, 16), dtype=np.uint8)
    batch_states = batch_round_states(per_keys, per_pts)
    ref_states = np.array(
        [
            [list(s) for s in AES(bytes(k)).round_states(bytes(p))]
            for k, p in zip(per_keys, per_pts)
        ],
        dtype=np.uint8,
    )
    checks.record(
        "batch-round-states:per-trace-keys",
        bool(np.array_equal(batch_states, ref_states)),
        "24 encryptions under per-trace keys",
    )

    # --- RT datapath vs. the per-trace transition model -----------------
    datapath = AesDatapath(shared_key)
    pts = rng.integers(0, 256, size=(32, 16), dtype=np.uint8)
    prev = rng.integers(0, 256, size=(32, 16), dtype=np.uint8)
    batch_hd = datapath.batch_hamming_distances(pts, previous_ciphertexts=prev)
    ref_hd = np.array(
        [
            datapath.hamming_distances(bytes(p), previous_ciphertext=bytes(c))
            for p, c in zip(pts, prev)
        ],
        dtype=np.float64,
    )
    checks.record(
        "datapath:batch-vs-scalar-hamming",
        bool(np.array_equal(batch_hd, ref_hd)),
        "32 encryptions with chained previous ciphertexts, all 11 edges",
    )

    batch_ct = datapath.batch_ciphertexts(pts)
    ref_ct = np.array(
        [list(aes128_encrypt(shared_key, bytes(p))) for p in pts],
        dtype=np.uint8,
    )
    checks.record(
        "datapath:batch-ciphertexts",
        bool(np.array_equal(batch_ct, ref_ct)),
        "vectorized ciphertexts match the table cipher",
    )
