"""Accumulator differential oracle: streaming vs. batch, under schedules.

Each streaming accumulator (:class:`~repro.attacks.IncrementalCpa`,
:class:`~repro.attacks.IncrementalCpaBank`,
:class:`~repro.leakage_assessment.IncrementalTvla`,
:class:`~repro.utils.stats.RunningMoments`) is exercised under randomized
schedules from :mod:`repro.verify.schedules` and held to two standards:

* **Bit-identity** where the contract is exact: any snapshot/restore/
  replay schedule must reproduce the plain sequential fold bit-for-bit,
  zero-trace updates must be exact no-ops, and merging an empty shard
  (in either direction) must leave every state word unchanged.
* **Batch agreement** where float associativity intervenes: shard-merge
  schedules reassociate the running sums, so their results are compared
  against the batch reference (``column_pearson`` / ``welch_t`` /
  ``np.mean``/``np.var``) at tolerances far below any physical effect,
  with trace/population counts still required to match exactly.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.attacks.incremental import IncrementalCpa, IncrementalCpaBank
from repro.attacks.models import last_round_hd_predictions
from repro.leakage_assessment.tvla import IncrementalTvla
from repro.utils.stats import RunningMoments, column_pearson, welch_t
from repro.verify import Checks
from repro.verify.schedules import (
    MergeSchedule,
    ReplaySchedule,
    chunk_bounds,
    generate_merge_schedule,
    generate_replay_schedule,
)

#: Key bytes the bank oracle attacks (3 bytes keep the GEMM small while
#: still exercising the stacked-hypothesis layout).
_BANK_BYTES = (0, 3, 7)

_N_ROWS = 240
_N_SAMPLES = 12


def states_equal(a: dict, b: dict) -> bool:
    """Bit-exact equality of two snapshot dicts (arrays and scalars)."""
    if sorted(a) != sorted(b):
        return False
    for key in a:
        va, vb = a[key], b[key]
        if isinstance(va, np.ndarray) or isinstance(vb, np.ndarray):
            va, vb = np.asarray(va), np.asarray(vb)
            if va.shape != vb.shape or not np.array_equal(va, vb):
                return False
        elif va != vb:
            return False
    return True


class _Adapter:
    """Uniform driver interface over one accumulator type."""

    label: str

    def __init__(
        self,
        label: str,
        make: Callable[[], object],
        feed: Callable[[object, int, int], None],
        feed_empty: Callable[[object], None],
        count: Callable[[object], int],
        total_rows: int,
        compare_batch: Callable[[object], Tuple[bool, str]],
    ):
        self.label = label
        self.make = make
        self.feed = feed
        self.feed_empty = feed_empty
        self.count = count
        self.total_rows = total_rows
        self.compare_batch = compare_batch

    def fold_sequential(self, bounds: Sequence[Tuple[int, int]]):
        acc = self.make()
        for lo, hi in bounds:
            self.feed(acc, lo, hi)
        return acc

    def fold_replay(self, bounds: Sequence[Tuple[int, int]], schedule: ReplaySchedule):
        acc = self.make()
        saved = None
        for op in schedule.ops:
            if op[0] == "snapshot":
                saved = acc.snapshot()
            elif op[0] == "restore":
                acc.restore(saved)
            elif op[0] == "feed_empty":
                self.feed_empty(acc)
            else:
                lo, hi = bounds[op[1]]
                self.feed(acc, lo, hi)
        return acc

    def fold_merge(
        self,
        bounds: Sequence[Tuple[int, int]],
        schedule: MergeSchedule,
        populated_base: bool,
    ):
        # merge_order permutes every shard id, including shards that drew
        # no chunks — size the pool from it, not from shard_of.
        n_shards = len(schedule.merge_order)
        shards = [self.make() for _ in range(n_shards)]
        for chunk, shard in enumerate(schedule.shard_of):
            lo, hi = bounds[chunk]
            self.feed(shards[shard], lo, hi)
        order = list(schedule.merge_order)
        if populated_base:
            target = shards[order[0]]
            order = order[1:]
        else:
            target = self.make()
        for shard in order:
            target.merge(shards[shard])
        return target


def _tolerance_detail(diff: float, atol: float) -> str:
    return f"max |diff| {diff:.3e} (budget {atol:.0e})"


def _build_adapters(seed: int) -> List[_Adapter]:
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xACC]))
    traces = rng.normal(50.0, 6.0, size=(_N_ROWS, _N_SAMPLES))
    data = rng.integers(0, 256, size=(_N_ROWS, 16), dtype=np.uint8)
    fixed = rng.normal(48.0, 5.0, size=(_N_ROWS, _N_SAMPLES))
    random_ = rng.normal(50.0, 5.0, size=(_N_ROWS, _N_SAMPLES))
    empty_traces = np.empty((0, _N_SAMPLES))
    empty_data = np.empty((0, 16), dtype=np.uint8)

    cpa_ref = column_pearson(
        last_round_hd_predictions(data, 0).astype(np.float64), traces
    )

    def cpa_compare(acc) -> Tuple[bool, str]:
        diff = float(np.abs(acc.correlation() - cpa_ref).max())
        return diff <= 1e-9, _tolerance_detail(diff, 1e-9)

    bank_refs = [
        column_pearson(
            last_round_hd_predictions(data, b).astype(np.float64), traces
        )
        for b in _BANK_BYTES
    ]

    def bank_compare(acc) -> Tuple[bool, str]:
        corr = acc.correlation()
        diff = max(
            float(np.abs(corr[i] - ref).max())
            for i, ref in enumerate(bank_refs)
        )
        return diff <= 1e-9, _tolerance_detail(diff, 1e-9)

    tvla_ref = welch_t(fixed, random_)

    def tvla_compare(acc) -> Tuple[bool, str]:
        diff = float(np.abs(acc.result().t_values - tvla_ref).max())
        return diff <= 1e-8, _tolerance_detail(diff, 1e-8)

    mean_ref = traces.mean(axis=0)
    var_ref = traces.var(axis=0, ddof=1)

    def moments_compare(acc) -> Tuple[bool, str]:
        diff = max(
            float(np.abs(acc.mean - mean_ref).max()),
            float(np.abs(acc.variance - var_ref).max()),
        )
        return diff <= 1e-8, _tolerance_detail(diff, 1e-8)

    def tvla_feed(acc, lo, hi):
        acc.update_fixed(fixed[lo:hi])
        acc.update_random(random_[lo:hi])

    def tvla_feed_empty(acc):
        acc.update_fixed(empty_traces)
        acc.update_random(empty_traces)

    return [
        _Adapter(
            label="cpa",
            make=lambda: IncrementalCpa(byte_index=0),
            feed=lambda acc, lo, hi: acc.update(traces[lo:hi], data[lo:hi]),
            feed_empty=lambda acc: acc.update(empty_traces, empty_data),
            count=lambda acc: acc.n_traces,
            total_rows=_N_ROWS,
            compare_batch=cpa_compare,
        ),
        _Adapter(
            label="cpa_bank",
            make=lambda: IncrementalCpaBank(byte_indices=_BANK_BYTES),
            feed=lambda acc, lo, hi: acc.update(traces[lo:hi], data[lo:hi]),
            feed_empty=lambda acc: acc.update(empty_traces, empty_data),
            count=lambda acc: acc.n_traces,
            total_rows=_N_ROWS,
            compare_batch=bank_compare,
        ),
        _Adapter(
            label="tvla",
            make=IncrementalTvla,
            feed=tvla_feed,
            feed_empty=tvla_feed_empty,
            count=lambda acc: acc._fixed.count + acc._random.count,
            total_rows=2 * _N_ROWS,
            compare_batch=tvla_compare,
        ),
        _Adapter(
            label="moments",
            make=RunningMoments,
            feed=lambda acc, lo, hi: acc.update(traces[lo:hi]),
            feed_empty=lambda acc: acc.update(empty_traces),
            count=lambda acc: acc.count,
            total_rows=_N_ROWS,
            compare_batch=moments_compare,
        ),
    ]


def _zero_guard_checks(checks: Checks, adapter: _Adapter) -> None:
    """Empty updates and empty-shard merges must be exact no-ops."""
    # Zero-row update on a fresh accumulator: nothing allocated, count 0.
    acc = adapter.make()
    adapter.feed_empty(acc)
    fresh_state = adapter.make().snapshot()
    ok = states_equal(acc.snapshot(), fresh_state)

    # Zero-row update on a populated accumulator: state untouched.
    acc = adapter.make()
    adapter.feed(acc, 0, 32)
    before = acc.snapshot()
    adapter.feed_empty(acc)
    ok = ok and states_equal(acc.snapshot(), before)
    checks.record(
        f"zero-guards:{adapter.label}:empty-update",
        ok,
        "zero-trace update is a bit-exact no-op",
    )

    # fresh.merge(fresh) and populated.merge(fresh): both no-ops.
    a, b = adapter.make(), adapter.make()
    a.merge(b)
    ok = states_equal(a.snapshot(), fresh_state)
    a = adapter.make()
    adapter.feed(a, 0, 32)
    before = a.snapshot()
    a.merge(adapter.make())
    ok = ok and states_equal(a.snapshot(), before)

    # merge with a width-pinned but zero-count other (a restored snapshot
    # can legitimately carry allocated arrays with count 0): still a no-op.
    hollow = adapter.make()
    adapter.feed(hollow, 0, 32)
    state = hollow.snapshot()
    for key, value in state.items():
        if isinstance(value, np.ndarray):
            state[key] = np.zeros_like(value)
        elif isinstance(value, int) and key not in ("byte_index",):
            state[key] = 0
    hollow.restore(state)
    a = adapter.make()
    adapter.feed(a, 0, 32)
    before = a.snapshot()
    a.merge(hollow)
    ok = ok and states_equal(a.snapshot(), before)
    checks.record(
        f"zero-guards:{adapter.label}:empty-merge",
        ok,
        "merging an empty/fresh shard is a bit-exact no-op",
    )

    # fresh.merge(populated): adopts the shard exactly (resume-before-
    # first-chunk direction).
    a = adapter.make()
    b = adapter.make()
    adapter.feed(b, 0, 32)
    a.merge(b)
    checks.record(
        f"zero-guards:{adapter.label}:merge-into-fresh",
        states_equal(a.snapshot(), b.snapshot()),
        "merging into a fresh accumulator adopts the shard bit-exactly",
    )


def run_accumulator_checks(
    checks: Checks, seed: int = 2019, schedules: int = 50
) -> None:
    """Append the accumulator oracle's verdicts to ``checks``."""
    adapters = _build_adapters(seed)
    for adapter_index, adapter in enumerate(adapters):
        _zero_guard_checks(checks, adapter)

        # Streaming (sequential chunked fold) vs. the batch reference.
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, 0x5EED, adapter_index])
        )
        bounds = chunk_bounds(_N_ROWS, 6, rng)
        seq = adapter.fold_sequential(bounds)
        ok, detail = adapter.compare_batch(seq)
        checks.record(f"streaming-vs-batch:{adapter.label}", ok, detail)

        replay_failures: List[str] = []
        merge_failures: List[str] = []
        for index in range(schedules):
            bounds = chunk_bounds(_N_ROWS, int(rng.integers(4, 9)), rng)
            seq = adapter.fold_sequential(bounds)
            seq_state = seq.snapshot()

            replay = generate_replay_schedule(rng, len(bounds))
            replayed = adapter.fold_replay(bounds, replay)
            if not states_equal(replayed.snapshot(), seq_state):
                replay_failures.append(
                    f"schedule {index}: replay state != sequential fold"
                )

            merge = generate_merge_schedule(rng, len(bounds))
            merged = adapter.fold_merge(
                bounds, merge, populated_base=bool(index % 2)
            )
            if adapter.count(merged) != adapter.count(seq):
                merge_failures.append(
                    f"schedule {index}: count {adapter.count(merged)} != "
                    f"{adapter.count(seq)}"
                )
            else:
                ok, detail = adapter.compare_batch(merged)
                if not ok:
                    merge_failures.append(f"schedule {index}: {detail}")

        checks.record(
            f"replay-schedules:{adapter.label}",
            not replay_failures,
            "; ".join(replay_failures[:3])
            or f"{schedules} randomized snapshot/restore/replay schedules "
            "bit-identical to the sequential fold",
        )
        checks.record(
            f"merge-schedules:{adapter.label}",
            not merge_failures,
            "; ".join(merge_failures[:3])
            or f"{schedules} randomized shard-merge schedules match the "
            "batch reference (counts exact)",
        )
