"""Run-time environment drift: temperature, voltage and aging processes.

Galli et al. (arXiv 2409.01881) show that the run-time variability of a
real device — die temperature wandering with ambient and self-heating,
supply-voltage ripple, and slow transistor aging — misaligns and rescales
power traces enough to degrade CPA on its own, before any deliberate
countermeasure.  This module models those processes as **deterministic,
seeded, per-trace** gain/offset/jitter sequences applied in the scope
path, so a campaign can turn drift on per scenario and stay bit-for-bit
reproducible at any worker count.

Design constraints (both verified by ``tests/power/test_drift.py``):

* **Self-seeded.**  Drift never draws from the acquisition RNG streams:
  all randomness comes from the :class:`DriftSpec`'s own seed, evaluated
  as a pure function of the *absolute trace index*.  Enabling drift
  therefore does not perturb the plaintext/noise streams, and chunk
  boundaries are invisible — trace ``i`` sees the same environment
  whether it was acquired inline, by worker 3, or on a resumed run.
* **Exact zero identity.**  A spec whose amplitudes are all zero applies
  no arithmetic at all: the output array is the input array, bit for
  bit, exactly as if drift were disabled.

The processes
-------------

With ``i`` the absolute trace index and ``T`` the drift period in traces
(:attr:`DriftSpec.period_traces`):

* **Temperature** — a slow thermal wander: a sum of four seeded
  sinusoids with periods ``T/1 .. T/4`` and ``1/k`` amplitude roll-off
  (slow components dominate, like a die tracking ambient).  It moves the
  trace **gain** (CMOS dynamic current drops as temperature rises) and
  adds a proportional baseline **offset** (leakage current grows with
  temperature).
* **Voltage** — supply ripple: two faster seeded sinusoids (periods
  ``T/16`` and ``T/37``) plus white per-trace ripple from a counter
  hash.  Dynamic power goes as ``V^2``, so voltage acts on gain twice as
  strongly as on offset.
* **Aging** — monotonic gain decay, linear in ``i`` over
  :attr:`DriftSpec.aging_traces` (NBTI-style slowdown observed as
  amplitude loss).  ``amplitude=1`` loses 10% of gain after
  ``aging_traces`` encryptions.
* **Jitter** — per-trace trigger misalignment: a circular sample shift
  of up to ``jitter_samples`` points, uniform from the counter hash.
  (This models scope/sensor trigger wander, not the intra-trace clock
  jitter knob of :class:`~repro.power.synth.TraceSynthesizer`.)

The counter hash is SplitMix64 over ``(seed, index)`` — stateless, so
any subsequence of traces can be evaluated without generating its
prefix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

#: Schema tag folded into serialized drift specs.
DRIFT_SCHEMA = "rftc-drift-spec/1"

#: SplitMix64 constants (Steele et al., the JDK's SplittableRandom).
_SM64_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM64_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SM64_M2 = np.uint64(0x94D049BB133111EB)


def _splitmix64(seed: int, counters: np.ndarray) -> np.ndarray:
    """Stateless uint64 hash of ``(seed, counter)`` per element."""
    z = (np.asarray(counters, dtype=np.uint64) + np.uint64(seed)) * _SM64_GAMMA
    z = (z ^ (z >> np.uint64(30))) * _SM64_M1
    z = (z ^ (z >> np.uint64(27))) * _SM64_M2
    return z ^ (z >> np.uint64(31))


def _hash_uniform(seed: int, indices: np.ndarray) -> np.ndarray:
    """Per-index uniform floats in ``[-1, 1)`` from the counter hash."""
    bits = _splitmix64(seed, indices)
    # 53 mantissa bits -> [0, 1), then centered.
    return (bits >> np.uint64(11)).astype(np.float64) * (2.0**-52) - 1.0


@dataclass(frozen=True)
class DriftSpec:
    """Declarative drift configuration — a :class:`CampaignSpec` field.

    Attributes
    ----------
    temperature / voltage / aging:
        Dimensionless process amplitudes; 0 disables the component
        exactly.  ``temperature=1`` swings gain by about ±5% and offset
        by about ±1 leakage unit; ``voltage=1`` similarly; ``aging=1``
        decays gain 10% over ``aging_traces``.
    jitter_samples:
        Maximum per-trace trigger misalignment in scope samples
        (circular shift); 0 disables jitter exactly.
    seed:
        Seed of the drift processes — independent of the campaign seed.
    period_traces:
        Fundamental period of the thermal wander, in traces.
    aging_traces:
        Trace count over which ``aging=1`` loses 10% of gain.
    """

    temperature: float = 0.0
    voltage: float = 0.0
    aging: float = 0.0
    jitter_samples: int = 0
    seed: int = 7
    period_traces: int = 100_000
    aging_traces: int = 1_000_000

    def __post_init__(self) -> None:
        for name in ("temperature", "voltage", "aging"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} amplitude must be >= 0")
        if self.jitter_samples < 0:
            raise ConfigurationError("jitter_samples must be >= 0")
        if self.period_traces < 2:
            raise ConfigurationError("period_traces must be >= 2")
        if self.aging_traces < 1:
            raise ConfigurationError("aging_traces must be >= 1")

    @property
    def enabled(self) -> bool:
        """True when any component would actually touch the traces."""
        return bool(
            self.temperature > 0
            or self.voltage > 0
            or self.aging > 0
            or self.jitter_samples > 0
        )

    def to_dict(self) -> dict:
        """JSON-safe description (round-trips through :meth:`from_dict`)."""
        return {
            "temperature": self.temperature,
            "voltage": self.voltage,
            "aging": self.aging,
            "jitter_samples": self.jitter_samples,
            "seed": self.seed,
            "period_traces": self.period_traces,
            "aging_traces": self.aging_traces,
        }

    @staticmethod
    def from_dict(fields: dict) -> "DriftSpec":
        try:
            return DriftSpec(
                temperature=float(fields.get("temperature", 0.0)),
                voltage=float(fields.get("voltage", 0.0)),
                aging=float(fields.get("aging", 0.0)),
                jitter_samples=int(fields.get("jitter_samples", 0)),
                seed=int(fields.get("seed", 7)),
                period_traces=int(fields.get("period_traces", 100_000)),
                aging_traces=int(fields.get("aging_traces", 1_000_000)),
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(f"malformed drift spec: {exc}") from exc


class DriftProcess:
    """Evaluates a :class:`DriftSpec` on absolute trace indices.

    The seeded sinusoid phases are drawn once at construction (from the
    spec's seed, via the explicit generator API); evaluation is then a
    pure function of the index array.
    """

    #: (relative frequency, amplitude weight) of the thermal harmonics.
    _THERMAL_HARMONICS = ((1, 1.0), (2, 0.5), (3, 1.0 / 3.0), (4, 0.25))
    #: Relative frequencies of the supply-ripple sinusoids.
    _RIPPLE_HARMONICS = (16, 37)

    def __init__(self, spec: DriftSpec):
        self.spec = spec
        rng = np.random.default_rng(spec.seed)
        self._thermal_phases = rng.uniform(
            0.0, 2.0 * np.pi, len(self._THERMAL_HARMONICS)
        )
        self._ripple_phases = rng.uniform(
            0.0, 2.0 * np.pi, len(self._RIPPLE_HARMONICS)
        )
        # Distinct hash streams for ripple noise and jitter.
        self._ripple_seed = spec.seed * 2 + 1
        self._jitter_seed = spec.seed * 2 + 2

    # -- per-trace processes (all pure functions of the index) ---------

    def _thermal(self, idx: np.ndarray) -> np.ndarray:
        """Unit-scale thermal wander at each absolute index."""
        w = 2.0 * np.pi / self.spec.period_traces
        out = np.zeros(idx.shape, dtype=np.float64)
        for (k, weight), phase in zip(
            self._THERMAL_HARMONICS, self._thermal_phases
        ):
            out += weight * np.sin(w * k * idx + phase)
        return out

    def _ripple(self, idx: np.ndarray) -> np.ndarray:
        """Unit-scale supply ripple: fast sinusoids + white component."""
        w = 2.0 * np.pi / self.spec.period_traces
        out = np.zeros(idx.shape, dtype=np.float64)
        for k, phase in zip(self._RIPPLE_HARMONICS, self._ripple_phases):
            out += 0.4 * np.sin(w * k * idx + phase)
        out += 0.2 * _hash_uniform(self._ripple_seed, idx)
        return out

    def gain(self, idx: np.ndarray) -> np.ndarray:
        """Multiplicative amplitude drift at each absolute index."""
        idx = np.asarray(idx, dtype=np.float64)
        g = np.ones(idx.shape, dtype=np.float64)
        if self.spec.temperature > 0:
            g += 0.05 * self.spec.temperature * self._thermal(idx)
        if self.spec.voltage > 0:
            # P ~ V^2: voltage couples into gain at twice its offset weight.
            g += 0.04 * self.spec.voltage * self._ripple(idx)
        if self.spec.aging > 0:
            g -= 0.1 * self.spec.aging * (idx / self.spec.aging_traces)
        return g

    def offset(self, idx: np.ndarray) -> np.ndarray:
        """Additive baseline drift at each absolute index."""
        idx = np.asarray(idx, dtype=np.float64)
        o = np.zeros(idx.shape, dtype=np.float64)
        if self.spec.temperature > 0:
            o += 1.0 * self.spec.temperature * self._thermal(idx)
        if self.spec.voltage > 0:
            o += 0.02 * self.spec.voltage * self._ripple(idx)
        return o

    def shifts(self, idx: np.ndarray) -> np.ndarray:
        """Per-trace circular sample shifts (int64, possibly all zero)."""
        if self.spec.jitter_samples == 0:
            return np.zeros(np.asarray(idx).shape, dtype=np.int64)
        u = _hash_uniform(self._jitter_seed, np.asarray(idx))
        return np.rint(u * self.spec.jitter_samples).astype(np.int64)

    # -- application ---------------------------------------------------

    def apply(self, analog: np.ndarray, start_index: int) -> np.ndarray:
        """Drift ``(n, S)`` analog traces whose first row is trace
        ``start_index`` of the campaign.

        Returns the input object untouched when the spec is all-zero
        (the exact-zero identity); otherwise returns a new array of the
        same dtype.  Gain and offset are computed in float64 and applied
        in the trace dtype, mirroring the scope's noise handling.
        """
        if not self.spec.enabled:
            return analog
        analog = np.asarray(analog)
        if analog.ndim != 2:
            raise ConfigurationError("analog traces must be a 2-D matrix")
        n, n_samples = analog.shape
        idx = np.arange(start_index, start_index + n, dtype=np.int64)
        out = analog
        if self.spec.jitter_samples > 0:
            shifts = self.shifts(idx)
            cols = (
                np.arange(n_samples, dtype=np.int64)[None, :]
                - shifts[:, None]
            ) % n_samples
            out = np.take_along_axis(out, cols, axis=1)
        if self.spec.temperature > 0 or self.spec.voltage > 0 or self.spec.aging > 0:
            gain = self.gain(idx).astype(analog.dtype)[:, None]
            offset = self.offset(idx).astype(analog.dtype)[:, None]
            out = out * gain + offset
        return out


def build_drift(spec: Optional[DriftSpec]) -> Optional[DriftProcess]:
    """A :class:`DriftProcess` for ``spec``, or ``None`` when absent."""
    return None if spec is None else DriftProcess(spec)
