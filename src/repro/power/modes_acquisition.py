"""Multi-block (mode-of-operation) trace acquisition.

Runs whole messages through the protected core under a block cipher mode:
the mode expands each message into the sequence of values that actually
enter the cipher core (``mode.block_inputs``), and every core invocation is
measured like a standalone encryption — back-to-back, with the register
carrying the previous output, exactly as the hardware pipelines them.

This is the substrate of the [13]-style question the paper's authors raised
earlier: chaining and counter modes change what the adversary *knows* about
the core's inputs/outputs, not how the core leaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Protocol

import numpy as np

from repro.errors import AcquisitionError
from repro.power.acquisition import ProtectedAesDevice, TraceSet


class BlockMode(Protocol):
    """The mode interface the campaign needs (see :mod:`repro.crypto.modes`)."""

    def encrypt(self, plaintext: bytes) -> bytes:
        ...

    def block_inputs(self, plaintext: bytes) -> List[bytes]:
        ...


@dataclass
class ModeTraceSet:
    """Per-block traces of a multi-block campaign.

    Attributes
    ----------
    blocks:
        The flat per-core-invocation :class:`TraceSet` (one row per block).
    message_index / block_index:
        ``(n_blocks,)`` arrays locating each row in its source message.
    ciphertext_messages:
        The mode-level ciphertext of each message.
    """

    blocks: TraceSet
    message_index: np.ndarray
    block_index: np.ndarray
    ciphertext_messages: List[bytes]

    @property
    def n_messages(self) -> int:
        return len(self.ciphertext_messages)

    def blocks_of_message(self, message: int) -> TraceSet:
        """The per-block traces of one message."""
        if not 0 <= message < self.n_messages:
            raise AcquisitionError(f"no message {message}")
        return self.blocks.subset(np.nonzero(self.message_index == message)[0])

    def block_position(self, position: int) -> TraceSet:
        """All traces of block ``position`` across messages (e.g. counter 0)."""
        mask = self.block_index == position
        if not mask.any():
            raise AcquisitionError(f"no message has a block {position}")
        return self.blocks.subset(np.nonzero(mask)[0])


class ModeCampaign:
    """Acquire traces for messages encrypted under a mode of operation."""

    def __init__(self, device: ProtectedAesDevice, seed: int = 0):
        self.device = device
        self._rng = np.random.default_rng(seed)

    def random_messages(self, n_messages: int, n_blocks: int) -> List[bytes]:
        """Uniform random messages of ``n_blocks`` whole blocks each."""
        if n_messages < 1 or n_blocks < 1:
            raise AcquisitionError("need at least one message of one block")
        data = self._rng.integers(
            0, 256, size=(n_messages, 16 * n_blocks), dtype=np.uint8
        )
        return [row.tobytes() for row in data]

    def collect(self, mode: BlockMode, messages: List[bytes]) -> ModeTraceSet:
        """Encrypt each message under one mode instance (one IV/nonce).

        Appropriate for CBC/CFB/OFB studies of a single session; for modes
        whose security *requires* a fresh IV or nonce per message (CTR!),
        use :meth:`collect_with_factory`.
        """
        return self.collect_with_factory(lambda _mi: mode, messages)

    def collect_with_factory(
        self,
        mode_factory: Callable[[int], BlockMode],
        messages: List[bytes],
    ) -> ModeTraceSet:
        """Encrypt message ``i`` under ``mode_factory(i)``.

        The factory lets each message carry its own IV/nonce — the
        correct-usage model for CTR, where nonce reuse both breaks
        confidentiality *and* (as the fixed-core-input degenerate case)
        voids the power-analysis study.
        """
        if not messages:
            raise AcquisitionError("no messages supplied")
        core_inputs = []
        message_index = []
        block_index = []
        ciphertexts = []
        for mi, message in enumerate(messages):
            mode = mode_factory(mi)
            inputs = mode.block_inputs(message)
            ciphertexts.append(mode.encrypt(message))
            for bi, block in enumerate(inputs):
                core_inputs.append(np.frombuffer(block, dtype=np.uint8))
                message_index.append(mi)
                block_index.append(bi)
        flat = np.stack(core_inputs)
        blocks = self.device.run(flat, self._rng)
        return ModeTraceSet(
            blocks=blocks,
            message_index=np.asarray(message_index, dtype=np.int64),
            block_index=np.asarray(block_index, dtype=np.int64),
            ciphertext_messages=ciphertexts,
        )
