"""Trace-acquisition campaigns: the software stand-in for the lab bench.

``ProtectedAesDevice`` wires a countermeasure (anything with a
``schedule(n) -> ClockSchedule`` method — the RFTC controller or any of the
baselines) to the AES datapath, a leakage model, the analog synthesizer and
the scope.  ``AcquisitionCampaign`` runs it: generate plaintexts, produce
the clock schedule, render traces, and return everything an attack or a
TVLA evaluation needs as a :class:`TraceSet`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Protocol, Union

import numpy as np

from repro.crypto.datapath import AesDatapath
from repro.errors import AcquisitionError, ConfigurationError
from repro.hw.clock import ClockSchedule
from repro.obs import NULL_OBS
from repro.power.leakage import HammingDistanceLeakage, LeakageModel
from repro.power.scope import Oscilloscope
from repro.power.synth import TraceSynthesizer


class Countermeasure(Protocol):
    """Anything that can clock the AES core for a batch of encryptions."""

    def schedule(self, n_encryptions: int) -> ClockSchedule:
        ...


def sanitize_metadata(metadata: dict) -> dict:
    """A JSON-serialisable copy of a trace-set metadata dict.

    Campaign metadata mixes python scalars with numpy arrays and numpy
    scalars (set indices, per-round choices, stall times).  Arrays become
    nested lists, numpy scalars become their python equivalents; anything
    JSON cannot express is stringified via ``repr`` rather than dropped.
    """

    def convert(value):
        if isinstance(value, np.ndarray):
            return value.tolist()
        if isinstance(value, np.generic):
            return value.item()
        if isinstance(value, dict):
            return {str(k): convert(v) for k, v in value.items()}
        if isinstance(value, (list, tuple)):
            return [convert(v) for v in value]
        if isinstance(value, (str, int, float, bool)) or value is None:
            return value
        return repr(value)

    return {str(k): convert(v) for k, v in metadata.items()}


@dataclass
class TraceSet:
    """One acquisition campaign's output.

    Attributes
    ----------
    traces:
        ``(n, S)`` scope samples.
    plaintexts / ciphertexts:
        ``(n, 16)`` uint8.
    key:
        The device key (ground truth for evaluating attacks; a real
        adversary does not get this, the success-rate machinery does).
    completion_times_ns:
        Per-encryption durations, for completion-time statistics.
    sample_period_ns:
        Scope sample spacing, for time-axis bookkeeping.
    metadata:
        Countermeasure-specific extras (set indices, stall times...).
    """

    traces: np.ndarray
    plaintexts: np.ndarray
    ciphertexts: np.ndarray
    key: bytes
    completion_times_ns: np.ndarray
    sample_period_ns: float
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = self.traces.shape[0]
        if self.plaintexts.shape != (n, 16) or self.ciphertexts.shape != (n, 16):
            raise ConfigurationError("plaintexts/ciphertexts must be (n, 16)")
        if self.completion_times_ns.shape != (n,):
            raise ConfigurationError("completion_times_ns must be (n,)")
        if len(self.key) != 16:
            raise ConfigurationError("key must be 16 bytes")

    @property
    def n_traces(self) -> int:
        return int(self.traces.shape[0])

    @property
    def n_samples(self) -> int:
        return int(self.traces.shape[1])

    def subset(self, indices: np.ndarray) -> "TraceSet":
        """A view-like subset (arrays are fancy-indexed copies).

        Metadata entries that are per-trace arrays — a leading axis equal
        to ``n_traces``, like the RFTC controller's ``set_indices`` or
        ``stall_ns`` — are sliced with the same indices so they stay
        aligned with the surviving traces; everything else is carried over
        unchanged.
        """
        indices = np.asarray(indices)
        n = self.n_traces
        metadata = {
            key: value[indices]
            if isinstance(value, np.ndarray)
            and value.ndim >= 1
            and value.shape[0] == n
            else value
            for key, value in self.metadata.items()
        }
        return TraceSet(
            traces=self.traces[indices],
            plaintexts=self.plaintexts[indices],
            ciphertexts=self.ciphertexts[indices],
            key=self.key,
            completion_times_ns=self.completion_times_ns[indices],
            sample_period_ns=self.sample_period_ns,
            metadata=metadata,
        )

    #: Archive members every :meth:`save` call writes (``metadata_json`` is
    #: newer than some archives in the wild, so :meth:`load` treats it as
    #: optional for backward compatibility).
    _REQUIRED_KEYS = (
        "traces",
        "plaintexts",
        "ciphertexts",
        "key",
        "completion_times_ns",
        "sample_period_ns",
    )

    def save(self, path: Union[str, Path]) -> None:
        """Persist to an ``.npz`` archive (metadata serialised as JSON)."""
        np.savez_compressed(
            Path(path),
            traces=self.traces,
            plaintexts=self.plaintexts,
            ciphertexts=self.ciphertexts,
            key=np.frombuffer(self.key, dtype=np.uint8),
            completion_times_ns=self.completion_times_ns,
            sample_period_ns=np.array(self.sample_period_ns),
            metadata_json=np.array(json.dumps(sanitize_metadata(self.metadata))),
        )

    @staticmethod
    def load(path: Union[str, Path]) -> "TraceSet":
        """Load a set previously stored with :meth:`save`.

        Validates the archive contents (a truncated or foreign ``.npz``
        raises :class:`AcquisitionError`, not a bare ``KeyError``) and
        closes the file handle before returning.  Archives written before
        metadata was persisted load with an empty metadata dict.
        """
        path = Path(path)
        try:
            archive = np.load(path)
        except (OSError, ValueError) as exc:
            raise AcquisitionError(f"cannot read trace archive {path}: {exc}")
        if not hasattr(archive, "files"):
            raise AcquisitionError(
                f"{path} is a bare array, not a TraceSet .npz archive"
            )
        with archive as data:
            missing = [k for k in TraceSet._REQUIRED_KEYS if k not in data.files]
            if missing:
                raise AcquisitionError(
                    f"trace archive {path} is missing keys {missing}; "
                    "expected one written by TraceSet.save()"
                )
            metadata: dict = {}
            if "metadata_json" in data.files:
                try:
                    metadata = json.loads(str(data["metadata_json"]))
                except json.JSONDecodeError as exc:
                    raise AcquisitionError(
                        f"trace archive {path} has corrupt metadata: {exc}"
                    )
            return TraceSet(
                traces=data["traces"],
                plaintexts=data["plaintexts"],
                ciphertexts=data["ciphertexts"],
                key=bytes(data["key"]),
                completion_times_ns=data["completion_times_ns"],
                sample_period_ns=float(data["sample_period_ns"]),
                metadata=metadata,
            )

    def to_store(
        self, path: Union[str, Path], chunk_size: int = 5000
    ) -> "ChunkedTraceStore":
        """Re-chunk this in-memory set into a :class:`~repro.store.ChunkedTraceStore`.

        The bridge between the monolithic and the streaming worlds: the
        store's :meth:`~repro.store.ChunkedTraceStore.load_all` inverts it.
        """
        from repro.store import ChunkedTraceStore

        if chunk_size < 1:
            raise AcquisitionError("chunk_size must be >= 1")
        # Array-valued metadata (per-trace schedules) rides along in each
        # chunk's sidecar; only scalar provenance belongs in the manifest.
        scalar_meta = {
            k: v for k, v in self.metadata.items()
            if not isinstance(v, np.ndarray)
        }
        store = ChunkedTraceStore.create(
            path,
            key=self.key,
            sample_period_ns=self.sample_period_ns,
            metadata=sanitize_metadata(scalar_meta),
        )
        for start in range(0, self.n_traces, chunk_size):
            store.append(self.subset(np.arange(start, min(start + chunk_size, self.n_traces))))
        return store


class ProtectedAesDevice:
    """AES core + countermeasure + measurement chain.

    Parameters
    ----------
    key:
        The 16-byte device key.
    countermeasure:
        Clock scheduler (RFTC controller or a baseline).
    leakage / synthesizer / scope:
        Measurement-chain stages; defaults model the paper's bench with the
        SNR scaled for laptop-feasible trace counts (see DESIGN.md).
        ``scope`` may also be a :class:`~repro.power.cloud.CloudSensor`
        (anything with the scope's ``capture(analog, rng)`` contract).
    drift:
        Optional :class:`~repro.power.drift.DriftProcess` applied to the
        analog traces before capture.  Drift is a function of the
        *absolute* trace index: :attr:`trace_offset` names the campaign
        index of the next trace this device will run, and advances with
        every :meth:`run` so sequential chunked acquisition drifts
        continuously.  The streaming engine instead sets it per chunk.
    """

    def __init__(
        self,
        key: bytes,
        countermeasure: Countermeasure,
        leakage: Optional[LeakageModel] = None,
        synthesizer: Optional[TraceSynthesizer] = None,
        scope: Optional[Oscilloscope] = None,
        drift=None,
    ):
        self.datapath = AesDatapath(key)
        self.countermeasure = countermeasure
        self.leakage = leakage if leakage is not None else HammingDistanceLeakage()
        self.synthesizer = (
            synthesizer if synthesizer is not None else TraceSynthesizer()
        )
        self.scope = scope if scope is not None else Oscilloscope()
        if abs(self.scope.sample_rate_msps - self.synthesizer.sample_rate_msps) > 1e-9:
            raise ConfigurationError(
                "scope and synthesizer must agree on the sample rate"
            )
        self.drift = drift
        #: Campaign index of the next trace acquired by :meth:`run`.
        self.trace_offset = 0
        #: Optional :class:`~repro.obs.Observability` bundle; workers of
        #: an observed campaign swap in their private one.  Observation
        #: reads the stage clocks only — never the RNG streams.
        self.obs = NULL_OBS

    @property
    def sample_period_ns(self) -> float:
        """Period of the *captured* samples (decimating front-ends widen it)."""
        return self.synthesizer.dt_ns * getattr(self.scope, "decimation", 1)

    @property
    def key(self) -> bytes:
        return self.datapath.key

    def run(
        self, plaintexts: np.ndarray, rng: np.random.Generator
    ) -> TraceSet:
        """Encrypt each plaintext once and capture the power trace.

        The returned set's ``metadata["stage_seconds"]`` breaks the run
        down by measurement-chain stage (schedule / crypto / leakage /
        synth / capture) so pipelines and benchmarks can report where
        acquisition time actually goes.
        """
        plaintexts = np.ascontiguousarray(plaintexts, dtype=np.uint8)
        if plaintexts.ndim != 2 or plaintexts.shape[1] != 16:
            raise AcquisitionError("plaintexts must be (n, 16) uint8")
        n = plaintexts.shape[0]
        tracer = self.obs.tracer
        t0 = time.perf_counter()
        with tracer.span("acquire_stage", stage="schedule"):
            schedule = self.countermeasure.schedule(n)
        if schedule.n_encryptions != n:
            raise AcquisitionError(
                "countermeasure returned a schedule of the wrong length"
            )
        t1 = time.perf_counter()
        with tracer.span("acquire_stage", stage="crypto"):
            # One datapath pass per chunk: the round states feed both the
            # ciphertexts and the leakage model's register transitions.
            states = self.datapath.batch_states(plaintexts)
            ciphertexts = states[:, -1]
        t2 = time.perf_counter()
        # Back-to-back encryptions: the register holds the previous
        # ciphertext when the next plaintext loads (Fig. 2 timeline).
        with tracer.span("acquire_stage", stage="leakage"):
            previous = np.vstack(
                [np.zeros((1, 16), dtype=np.uint8), ciphertexts[:-1]]
            )
            amplitudes = self.leakage.cycle_amplitudes(
                schedule, self.datapath, plaintexts, previous, rng,
                states=states,
            )
        t3 = time.perf_counter()
        with tracer.span("acquire_stage", stage="synth"):
            analog = self.synthesizer.synthesize(schedule, amplitudes, rng=rng)
            if self.drift is not None:
                analog = self.drift.apply(analog, self.trace_offset)
        t4 = time.perf_counter()
        with tracer.span("acquire_stage", stage="capture"):
            traces = self.scope.capture(analog, rng)
        t5 = time.perf_counter()
        self.trace_offset += n
        metadata = dict(schedule.metadata)
        metadata["stage_seconds"] = {
            "schedule": t1 - t0,
            "crypto": t2 - t1,
            "leakage": t3 - t2,
            "synth": t4 - t3,
            "capture": t5 - t4,
        }
        if self.obs.enabled:
            metrics = self.obs.metrics
            for stage, seconds in metadata["stage_seconds"].items():
                metrics.observe(
                    "acquisition_stage_seconds", seconds, stage=stage
                )
            metrics.inc("acquisition_traces_total", n)
        return TraceSet(
            traces=traces,
            plaintexts=plaintexts,
            ciphertexts=ciphertexts,
            key=self.key,
            completion_times_ns=schedule.completion_times_ns(),
            sample_period_ns=self.sample_period_ns,
            metadata=metadata,
        )


class AcquisitionCampaign:
    """Plaintext generation + device runs, with TVLA-style fixed/random splits."""

    def __init__(self, device: ProtectedAesDevice, seed: Optional[int] = None):
        self.device = device
        self._rng = np.random.default_rng(seed)

    def random_plaintexts(self, n: int) -> np.ndarray:
        """Uniform random 16-byte plaintexts."""
        if n < 1:
            raise AcquisitionError("n must be >= 1")
        return self._rng.integers(0, 256, size=(n, 16), dtype=np.uint8)

    def collect(self, n: int) -> TraceSet:
        """Known-plaintext campaign (the CPA threat model of Sec. 2)."""
        return self.device.run(self.random_plaintexts(n), self._rng)

    def collect_chunks(self, n: int, chunk_size: int) -> Iterator[TraceSet]:
        """Known-plaintext campaign yielded as bounded-memory chunks.

        Sequential sibling of :class:`repro.pipeline.StreamingCampaign`:
        one RNG stream, chunks emitted in order, never more than
        ``chunk_size`` traces resident.  Chunk boundaries are visible to
        stateful countermeasures (each chunk opens a fresh schedule), which
        is exactly how repeated scope arm/capture segments behave on the
        real bench.
        """
        if n < 1:
            raise AcquisitionError("n must be >= 1")
        if chunk_size < 1:
            raise AcquisitionError("chunk_size must be >= 1")
        for start in range(0, n, chunk_size):
            chunk = self.device.run(
                self.random_plaintexts(min(chunk_size, n - start)), self._rng
            )
            chunk.metadata["chunk_start"] = start
            yield chunk

    def collect_fixed(self, n: int, plaintext: bytes) -> TraceSet:
        """Fixed-plaintext campaign (one TVLA population)."""
        if len(plaintext) != 16:
            raise AcquisitionError("fixed plaintext must be 16 bytes")
        fixed = np.tile(np.frombuffer(plaintext, dtype=np.uint8), (n, 1))
        return self.device.run(fixed, self._rng)

    def collect_fixed_vs_random(
        self, n_per_group: int, plaintext: bytes
    ) -> "tuple[TraceSet, TraceSet]":
        """Interleaved fixed/random populations for TVLA.

        Interleaving (rather than two back-to-back campaigns) is TVLA best
        practice: it decorrelates environment drift from the populations.
        Here both groups run through one device schedule stream, so RFTC's
        reconfiguration pipeline states are shared across groups as on real
        hardware.
        """
        if len(plaintext) != 16:
            raise AcquisitionError("fixed plaintext must be 16 bytes")
        total = 2 * n_per_group
        pts = self.random_plaintexts(total)
        fixed_rows = np.arange(0, total, 2)
        pts[fixed_rows] = np.frombuffer(plaintext, dtype=np.uint8)
        combined = self.device.run(pts, self._rng)
        random_rows = np.arange(1, total, 2)
        return combined.subset(fixed_rows), combined.subset(random_rows)
