"""Analog trace synthesis: clock edges + amplitudes -> sampled current.

Each rising clock edge draws a current spike whose charge is set by the
leakage model; the spike decays exponentially with the die/decoupling time
constant.  The synthesizer evaluates that pulse train on the oscilloscope's
sample grid:

    trace(t) = sum_k A_k * exp(-(t - e_k)/tau) * [t >= e_k]

where e_k is the edge ending cycle k.  Randomized clocks move the e_k — this
is the *only* mechanism by which RFTC (or any random execution-time
countermeasure) protects the trace, so the synthesizer is deliberately
faithful about edge placement and deliberately simple about pulse shape.

The default :meth:`TraceSynthesizer.synthesize` evaluates that sum with an
exact O(n·S) recursive-decay algorithm: each edge is scattered onto the
sample grid as one impulse pre-decayed to its first covered sample, then a
single-pole recursion ``y[s] = x[s] + y[s-1]·exp(-dt/τ)`` propagates every
pulse tail — exact for the exponential kernel, never materializing the
(traces × cycles × samples) broadcast.  The original broadcast kernel is
kept as :meth:`TraceSynthesizer.synthesize_reference` for equivalence tests
and benchmarking (see ``docs/performance.md``).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

try:  # pragma: no cover - exercised implicitly on hosts with scipy
    from scipy.signal import lfilter as _lfilter
except ImportError:  # pragma: no cover
    _lfilter = None

from repro.errors import ConfigurationError
from repro.hw.clock import ClockSchedule
from repro.utils.validation import check_positive, check_positive_int


class TraceSynthesizer:
    """Evaluates the pulse-train model on a fixed sample grid.

    Parameters
    ----------
    sample_rate_msps:
        Sample rate in MS/s.  The default 250 MS/s (4 ns per point) keeps
        attack matrices laptop-sized; the paper's scope samples faster but
        its 100 MHz bandwidth discards the difference.
    n_samples:
        Samples per trace.  256 points at 4 ns cover 1.024 us — enough for
        the slowest RFTC completion (833 ns) plus margin.
    tau_ns:
        Pulse decay time constant.
    chunk_traces:
        Internal batch size bounding the (chunk x samples x cycles) working
        set.
    jitter_ps_rms:
        RMS cycle-to-cycle clock jitter: each edge time is perturbed by
        independent Gaussian noise of this magnitude (an ``rng`` must then
        be passed to :meth:`synthesize`).  MMCM output jitter on a Kintex-7
        is on the order of 100 ps — invisible at 4 ns sampling, which is
        why the default is 0; the knob exists for sensitivity studies.
    dtype:
        Output sample dtype of :meth:`synthesize`: ``"float64"``
        (default) or ``"float32"``.  Edge placement, impulse scatter,
        and pre-decay always run in float64 — only the final decay
        recursion (the O(n·S) bulk of the work) drops to float32, so
        the opt-in costs ~one ulp of the recursion, bounded by the
        ``synthesize_float32`` drift budget.
    taps:
        Intra-round pulse substructure: ``(delay_ns, fraction)`` pairs.
        Each clock edge deposits one decaying pulse *per tap*, the tap's
        fraction of the cycle amplitude, offset by its delay — modelling
        the register edge followed by the round's combinational logic
        settling (SubBytes/MixColumns switching a few ns later).  The
        default single tap at 0 ns is the paper-minimal model; e.g.
        ``((0.0, 0.6), (7.0, 0.4))`` adds a MixColumns bump.
    """

    def __init__(
        self,
        sample_rate_msps: float = 250.0,
        n_samples: int = 256,
        tau_ns: float = 6.0,
        chunk_traces: int = 4096,
        jitter_ps_rms: float = 0.0,
        taps: Sequence[Tuple[float, float]] = ((0.0, 1.0),),
        dtype: str = "float64",
    ):
        if dtype not in ("float64", "float32"):
            raise ConfigurationError(
                f"dtype must be 'float64' or 'float32', got {dtype!r}"
            )
        self.dtype = dtype
        self.sample_rate_msps = check_positive("sample_rate_msps", sample_rate_msps)
        self.n_samples = check_positive_int("n_samples", n_samples)
        self.tau_ns = check_positive("tau_ns", tau_ns)
        self.chunk_traces = check_positive_int("chunk_traces", chunk_traces)
        if jitter_ps_rms < 0:
            raise ConfigurationError("jitter_ps_rms must be >= 0")
        self.jitter_ps_rms = float(jitter_ps_rms)
        if not taps:
            raise ConfigurationError("at least one pulse tap is required")
        for delay, fraction in taps:
            if delay < 0:
                raise ConfigurationError("tap delays must be >= 0")
            if fraction <= 0:
                raise ConfigurationError("tap fractions must be > 0")
        self.taps = tuple((float(d), float(f)) for d, f in taps)

    @property
    def dt_ns(self) -> float:
        """Sample spacing in nanoseconds."""
        return 1000.0 / self.sample_rate_msps

    @property
    def window_ns(self) -> float:
        """Trace window length in nanoseconds."""
        return self.dt_ns * self.n_samples

    def time_axis_ns(self) -> np.ndarray:
        """Sample times relative to the trigger (encryption start)."""
        return np.arange(self.n_samples) * self.dt_ns

    def _validated_edges(
        self,
        schedule: ClockSchedule,
        amplitudes: np.ndarray,
        rng: Optional[np.random.Generator],
    ) -> "Tuple[np.ndarray, np.ndarray]":
        """Shared input validation: returns ``(edge_times, amplitudes)``."""
        amplitudes = np.asarray(amplitudes, dtype=np.float64)
        n, c = schedule.periods_ns.shape
        if amplitudes.shape != (n, c):
            raise ConfigurationError(
                f"amplitudes shape {amplitudes.shape} does not match "
                f"schedule {(n, c)}"
            )
        edge_times = schedule.edge_times_ns()  # (n, C)
        if self.jitter_ps_rms > 0:
            if rng is None:
                raise ConfigurationError(
                    "an rng is required when jitter_ps_rms > 0"
                )
            edge_times = edge_times + rng.normal(
                0.0, self.jitter_ps_rms * 1e-3, edge_times.shape
            )
        if edge_times.max() > self.window_ns + 3 * self.tau_ns:
            raise ConfigurationError(
                f"slowest encryption ends at {edge_times.max():.1f} ns but the "
                f"scope window is only {self.window_ns:.1f} ns; increase "
                "n_samples or the sample rate"
            )
        return edge_times, amplitudes

    def synthesize(
        self,
        schedule: ClockSchedule,
        amplitudes: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Render the pulse train for every encryption.

        Uses the exact O(n·S) recursive-decay kernel: results match
        :meth:`synthesize_reference` to better than 1e-9 (asserted by the
        test suite) at a fraction of its time and memory.

        Parameters
        ----------
        schedule:
            Per-cycle clock periods (defines the edge times e_k).
        amplitudes:
            ``(n, C)`` per-cycle pulse amplitudes from the leakage model.
        rng:
            Required when ``jitter_ps_rms > 0``; supplies the edge-time
            perturbations.

        Returns
        -------
        ``(n, n_samples)`` float64 analog traces (pre-scope: no noise, no
        bandwidth limit, no quantization).
        """
        edge_times, amplitudes = self._validated_edges(schedule, amplitudes, rng)
        n = edge_times.shape[0]
        s_count = self.n_samples
        dt = self.dt_ns
        # One extra grid point so out-of-window edges index safely before
        # being dropped.
        grid = np.arange(s_count + 1) * dt
        impulses = np.zeros(n * s_count, dtype=np.float64)
        row_base = np.broadcast_to(
            (np.arange(n) * s_count)[:, None], edge_times.shape
        )
        for delay_ns, fraction in self.taps:
            e = edge_times + delay_ns  # (n, C)
            # First sample at or after the edge.  ceil(e/dt) is correct in
            # exact arithmetic; the two masked corrections re-anchor the
            # index to the actual float sample grid so the causality cut
            # (t_s >= e) matches the broadcast kernel bit for bit.
            s0 = np.ceil(e / dt).astype(np.int64)
            np.clip(s0, 0, s_count, out=s0)
            dec = (s0 > 0) & (grid[np.maximum(s0 - 1, 0)] >= e)
            s0[dec] -= 1
            inc = (s0 < s_count) & (grid[s0] < e)
            s0[inc] += 1
            keep = s0 < s_count
            if not np.any(keep):
                continue
            pre_decay = np.exp(-(grid[s0[keep]] - e[keep]) / self.tau_ns)
            impulses += np.bincount(
                row_base[keep] + s0[keep],
                weights=fraction * amplitudes[keep] * pre_decay,
                minlength=n * s_count,
            )
        out_dtype = np.dtype(self.dtype)
        traces = impulses.reshape(n, s_count)
        decay = np.exp(-dt / self.tau_ns)
        # The decay recursion always runs in float64 and narrows at the
        # end: the pulse tail shrinks exponentially, and in a float32
        # recursion it underflows into denormals (sub-1.2e-38 values whose
        # arithmetic is microcoded, ~3x the filter cost).  float64 keeps
        # every intermediate normal, so the filter runs at full speed and
        # the float32 output is just the correctly-rounded float64 result.
        if _lfilter is not None:
            b = np.array([1.0])
            a = np.array([1.0, -decay])
            return _lfilter(b, a, traces, axis=1).astype(out_dtype, copy=False)
        for s in range(1, s_count):
            traces[:, s] += decay * traces[:, s - 1]
        return traces.astype(out_dtype, copy=False)

    def synthesize_reference(
        self,
        schedule: ClockSchedule,
        amplitudes: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """The original O(n·C·S) broadcast kernel.

        Materializes the full ``(chunk, cycles, samples)`` delta tensor per
        chunk.  Kept as the executable specification of the pulse model:
        equivalence tests and ``benchmarks/bench_kernels.py`` compare
        :meth:`synthesize` against it.
        """
        edge_times, amplitudes = self._validated_edges(schedule, amplitudes, rng)
        n = edge_times.shape[0]
        t = self.time_axis_ns()  # (S,)
        traces = np.zeros((n, self.n_samples), dtype=np.float64)
        for start in range(0, n, self.chunk_traces):
            stop = min(start + self.chunk_traces, n)
            chunk_edges = edge_times[start:stop]  # (b, C)
            chunk_amps = amplitudes[start:stop]  # (b, C)
            for delay_ns, fraction in self.taps:
                delta = (
                    t[None, None, :] - chunk_edges[:, :, None] - delay_ns
                )  # (b, C, S)
                with np.errstate(over="ignore"):
                    kernel = np.where(
                        delta >= 0.0,
                        np.exp(-np.maximum(delta, 0.0) / self.tau_ns),
                        0.0,
                    )
                traces[start:stop] += fraction * np.einsum(
                    "bc,bcs->bs", chunk_amps, kernel
                )
        return traces
