"""Synthetic power-measurement channel.

Replaces the paper's SASEBO-GIII shunt + Agilent DSO-X 2012A: the AES
datapath model supplies per-cycle register switching (Hamming distances),
the countermeasure supplies per-cycle clock periods, and this package turns
them into sampled, band-limited, noisy voltage traces — the exact channel
CPA/DTW/PCA/FFT/TVLA consume.
"""

from repro.power.acquisition import (
    AcquisitionCampaign,
    ProtectedAesDevice,
    TraceSet,
    sanitize_metadata,
)
from repro.power.cloud import CloudSensor
from repro.power.drift import DriftProcess, DriftSpec, build_drift
from repro.power.leakage import (
    HammingDistanceLeakage,
    HammingWeightLeakage,
    LeakageModel,
)
from repro.power.scope import Oscilloscope
from repro.power.synth import TraceSynthesizer

__all__ = [
    "AcquisitionCampaign",
    "CloudSensor",
    "DriftProcess",
    "DriftSpec",
    "ProtectedAesDevice",
    "TraceSet",
    "HammingDistanceLeakage",
    "HammingWeightLeakage",
    "LeakageModel",
    "Oscilloscope",
    "TraceSynthesizer",
    "build_drift",
    "sanitize_metadata",
]
