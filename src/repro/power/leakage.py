"""Leakage models: how register activity becomes current amplitude.

CMOS dynamic power is dominated by node switching, so the canonical FPGA
leakage model (Mangard et al., "Power Analysis Attacks") makes the current
drawn at a clock edge an affine function of the Hamming distance between
consecutive register states, plus key-independent switching (control logic,
clock tree) and amplitude noise.  :class:`HammingDistanceLeakage` implements
that; :class:`HammingWeightLeakage` is the simpler value-based model some
ASIC targets follow, kept for comparison studies.
"""

from __future__ import annotations

from typing import Optional, Protocol

import numpy as np

from repro.crypto.datapath import AesDatapath
from repro.errors import ConfigurationError
from repro.hw.clock import ClockSchedule
from repro.utils.bitops import HW8

#: Register width of the AES-128 datapath; dummy cycles toggle ~half of it.
REGISTER_BITS = 128


class LeakageModel(Protocol):
    """Maps an encryption batch onto per-cycle current amplitudes."""

    def cycle_amplitudes(
        self,
        schedule: ClockSchedule,
        datapath: AesDatapath,
        plaintexts: np.ndarray,
        previous_ciphertexts: Optional[np.ndarray],
        rng: np.random.Generator,
        states: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Return ``(n, C)`` amplitudes aligned with ``schedule.periods_ns``.

        ``states`` optionally carries the precomputed
        :meth:`~repro.crypto.datapath.AesDatapath.batch_states` result for
        ``plaintexts`` so the model can skip re-running the datapath.
        """
        ...


class HammingDistanceLeakage:
    """Hamming-distance leakage of the round register (the FPGA model).

    amplitude = ``alpha * HD + baseline + N(0, amplitude_noise)``

    Dummy cycles (RCDD-style inserted operations) still clock the datapath
    on unrelated data, so they draw a binomial(``REGISTER_BITS``, 1/2)
    switching amplitude — indistinguishable in magnitude from real rounds,
    exactly why dummy-cycle countermeasures misalign rather than hide.

    Parameters
    ----------
    alpha:
        Current per toggled register bit (arbitrary units; the scope model
        scales to volts).
    baseline:
        Key-independent per-edge current (clock tree, control).
    amplitude_noise:
        Gaussian sigma of per-edge electronic amplitude noise.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        baseline: float = 20.0,
        amplitude_noise: float = 4.0,
    ):
        if alpha <= 0:
            raise ConfigurationError("alpha must be positive")
        if baseline < 0 or amplitude_noise < 0:
            raise ConfigurationError("baseline and amplitude_noise must be >= 0")
        self.alpha = float(alpha)
        self.baseline = float(baseline)
        self.amplitude_noise = float(amplitude_noise)

    def cycle_amplitudes(
        self,
        schedule: ClockSchedule,
        datapath: AesDatapath,
        plaintexts: np.ndarray,
        previous_ciphertexts: Optional[np.ndarray],
        rng: np.random.Generator,
        states: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        n, c = schedule.periods_ns.shape
        if plaintexts.shape != (n, 16):
            raise ConfigurationError(
                f"plaintexts shape {plaintexts.shape} does not match schedule ({n})"
            )
        hd = datapath.batch_hamming_distances(
            plaintexts, previous_ciphertexts, states=states
        )
        amplitudes = np.zeros((n, c), dtype=np.float64)
        # Dummy cycles: unrelated data through the same register.
        dummy_mask = ~schedule.is_real_cycle
        valid = np.arange(c)[None, :] < schedule.n_cycles[:, None]
        dummy_mask &= valid
        n_dummy = int(dummy_mask.sum())
        if n_dummy:
            amplitudes[dummy_mask] = rng.binomial(
                REGISTER_BITS, 0.5, size=n_dummy
            ).astype(np.float64)
        rows = np.arange(n)[:, None]
        amplitudes[rows, schedule.real_cycle_positions] = hd
        amplitudes = self.alpha * amplitudes + self.baseline
        if self.amplitude_noise > 0:
            amplitudes = amplitudes + rng.normal(0.0, self.amplitude_noise, (n, c))
        amplitudes[~valid] = 0.0
        return amplitudes


class HammingWeightLeakage:
    """Hamming-weight leakage of the register *value* after each edge.

    Kept for model-comparison experiments; the paper's FPGA target leaks
    distance, not weight.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        baseline: float = 20.0,
        amplitude_noise: float = 4.0,
    ):
        if alpha <= 0:
            raise ConfigurationError("alpha must be positive")
        if baseline < 0 or amplitude_noise < 0:
            raise ConfigurationError("baseline and amplitude_noise must be >= 0")
        self.alpha = float(alpha)
        self.baseline = float(baseline)
        self.amplitude_noise = float(amplitude_noise)

    def cycle_amplitudes(
        self,
        schedule: ClockSchedule,
        datapath: AesDatapath,
        plaintexts: np.ndarray,
        previous_ciphertexts: Optional[np.ndarray],
        rng: np.random.Generator,
        states: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        from repro.crypto.datapath import batch_round_states

        n, c = schedule.periods_ns.shape
        if plaintexts.shape != (n, 16):
            raise ConfigurationError(
                f"plaintexts shape {plaintexts.shape} does not match schedule ({n})"
            )
        if states is None:
            states = batch_round_states(
                np.frombuffer(datapath.key, dtype=np.uint8),
                np.asarray(plaintexts, dtype=np.uint8),
            )
        hw = HW8[states].sum(axis=2).astype(np.float64)  # (n, 11)
        amplitudes = np.zeros((n, c), dtype=np.float64)
        valid = np.arange(c)[None, :] < schedule.n_cycles[:, None]
        dummy_mask = (~schedule.is_real_cycle) & valid
        n_dummy = int(dummy_mask.sum())
        if n_dummy:
            amplitudes[dummy_mask] = rng.binomial(
                REGISTER_BITS, 0.5, size=n_dummy
            ).astype(np.float64)
        rows = np.arange(n)[:, None]
        amplitudes[rows, schedule.real_cycle_positions] = hw
        amplitudes = self.alpha * amplitudes + self.baseline
        if self.amplitude_noise > 0:
            amplitudes = amplitudes + rng.normal(0.0, self.amplitude_noise, (n, c))
        amplitudes[~valid] = 0.0
        return amplitudes
