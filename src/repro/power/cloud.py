"""Cloud co-tenant sensor: an on-chip acquisition front-end.

Remote power analysis (arXiv 2307.02569 and the FPGA-sharing literature)
replaces the oscilloscope with a sensor the adversary can *instantiate in
fabric* next to the victim: a TDC delay line or ring oscillator whose
count tracks the supply voltage.  Compared to a bench scope it is

* **band-limited** — the sensor chain is a heavily damped RC observer of
  the power distribution network, not a 100 MHz front-end;
* **decimated** — one reading per sensor sampling window, a fraction of
  the scope's rate;
* **coarse** — a TDC yields a few bits per reading, not 8;
* **noisy in bursts** — other tenants' switching activity adds
  piecewise-constant interference on top of thermal noise.

:class:`CloudSensor` implements the same ``capture(analog, rng)``
contract as :class:`~repro.power.scope.Oscilloscope`, so it drops into
:class:`~repro.power.acquisition.ProtectedAesDevice` unchanged and is
selectable per campaign via ``CampaignSpec(acquisition="cloud")``.  The
output has ``ceil(S / decimation)`` samples per trace; the device
reports the widened sample period through
:attr:`CloudSensor.decimation`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.signal import lfilter

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CloudSensor:
    """TDC/ring-oscillator-style co-tenant sensor front-end.

    Attributes
    ----------
    sample_rate_msps:
        Input (synthesizer) rate; must match the device's synthesizer,
        exactly like the scope.
    bandwidth_mhz:
        -3 dB bandwidth of the sensor's PDN observation path (single-pole
        low-pass, same recursion as the scope but an order of magnitude
        slower).
    decimation:
        Keep one reading per ``decimation`` input samples (applied after
        the filter, so the discarded samples still inform the kept ones).
    tdc_bits:
        Reading resolution; 0 disables quantization.
    full_scale:
        Sensor full-scale amplitude; inputs clip beyond it.
    noise_std:
        Thermal/readout Gaussian noise sigma per *kept* reading.
    tenant_noise_std:
        Co-tenant interference amplitude: piecewise-constant bursts,
        one level per ``tenant_burst_samples`` kept readings.  0 models
        an idle neighbour.
    tenant_burst_samples:
        Burst length of the interference, in kept readings.
    dtype:
        Captured sample dtype (``"float64"`` or ``"float32"``), same
        contract as the scope: noise is always drawn from the float64
        RNG stream and cast before the add.
    """

    sample_rate_msps: float = 250.0
    bandwidth_mhz: float = 10.0
    decimation: int = 4
    tdc_bits: int = 5
    full_scale: float = 400.0
    noise_std: float = 2.0
    tenant_noise_std: float = 1.0
    tenant_burst_samples: int = 8
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.sample_rate_msps <= 0:
            raise ConfigurationError("sample_rate_msps must be positive")
        if self.bandwidth_mhz <= 0:
            raise ConfigurationError("bandwidth_mhz must be positive")
        if self.decimation < 1:
            raise ConfigurationError("decimation must be >= 1")
        if self.tdc_bits < 0 or self.tdc_bits > 16:
            raise ConfigurationError("tdc_bits must be within [0, 16]")
        if self.full_scale <= 0:
            raise ConfigurationError("full_scale must be positive")
        if self.noise_std < 0 or self.tenant_noise_std < 0:
            raise ConfigurationError("noise sigmas must be >= 0")
        if self.tenant_burst_samples < 1:
            raise ConfigurationError("tenant_burst_samples must be >= 1")
        if self.dtype not in ("float64", "float32"):
            raise ConfigurationError(
                f"dtype must be 'float64' or 'float32', got {self.dtype!r}"
            )

    def output_samples(self, n_samples: int) -> int:
        """Kept readings per trace for ``n_samples`` input samples."""
        return -(-n_samples // self.decimation)

    def capture(
        self, analog: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Filter, decimate, add tenant + thermal noise, quantize."""
        out_dtype = np.dtype(self.dtype)
        traces = np.asarray(analog, dtype=out_dtype)
        if traces.ndim != 2:
            raise ConfigurationError("analog traces must be a 2-D matrix")
        traces = self._lowpass(traces)
        if self.decimation > 1:
            traces = np.ascontiguousarray(traces[:, :: self.decimation])
        needs_rng = self.noise_std > 0 or self.tenant_noise_std > 0
        if needs_rng and rng is None:
            raise ConfigurationError("an rng is required when noise is enabled")
        if self.tenant_noise_std > 0:
            traces = traces + self._tenant_interference(traces.shape, rng)
        if self.noise_std > 0:
            noise = rng.normal(0.0, self.noise_std, traces.shape)
            noise = noise.astype(out_dtype, copy=False)
            np.add(traces, noise, out=noise)
            traces = noise
        if self.tdc_bits > 0:
            traces = self._quantize(traces)
        return traces

    def _lowpass(self, traces: np.ndarray) -> np.ndarray:
        """Single-pole IIR at the sensor bandwidth (float64 recursion)."""
        dt_s = 1e-6 / self.sample_rate_msps
        rc = 1.0 / (2.0 * np.pi * self.bandwidth_mhz * 1e6)
        alpha = dt_s / (rc + dt_s)
        b = np.array([alpha])
        a = np.array([1.0, alpha - 1.0])
        return lfilter(b, a, traces, axis=1).astype(traces.dtype, copy=False)

    def _tenant_interference(
        self, shape: "tuple[int, ...]", rng: np.random.Generator
    ) -> np.ndarray:
        """Piecewise-constant co-tenant activity, ``(n, S')`` in out dtype."""
        n, s = shape
        n_bursts = -(-s // self.tenant_burst_samples)
        levels = rng.normal(0.0, self.tenant_noise_std, (n, n_bursts))
        bursts = np.repeat(levels, self.tenant_burst_samples, axis=1)[:, :s]
        return bursts.astype(np.dtype(self.dtype), copy=False)

    def _quantize(self, traces: np.ndarray) -> np.ndarray:
        """Mid-rise quantization onto ``2**tdc_bits`` levels (in place)."""
        levels = 2**self.tdc_bits
        lsb = self.full_scale / levels
        clipped = np.clip(traces, 0.0, self.full_scale - lsb / 2)
        clipped /= lsb
        np.round(clipped, out=clipped)
        clipped *= lsb
        return clipped
