"""Oscilloscope model: bandwidth limit, additive noise, ADC quantization.

Models the Agilent DSO-X 2012A of the experimental setup: 100 MHz analog
bandwidth (single-pole low-pass here), Gaussian front-end noise, and an
8-bit ADC over a fixed full-scale range.  The bandwidth limit matters to
the attacks — it smears each current pulse over several samples, which is
what lets CPA work without sample-perfect edge alignment and what limits
how much information FFT preprocessing can recover at high frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy.signal import lfilter

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Oscilloscope:
    """Scope front-end applied to analog traces.

    Attributes
    ----------
    sample_rate_msps:
        Must match the synthesizer's grid (the filter constant depends on it).
    bandwidth_mhz:
        -3 dB analog bandwidth; 0 disables the filter.
    noise_std:
        Additive Gaussian noise sigma, in the same arbitrary units as the
        leakage amplitudes (amplitude 1.0 == one register bit toggling).
    adc_bits:
        Quantizer resolution; 0 disables quantization.
    full_scale:
        ADC full-scale input amplitude; inputs clip beyond it.
    dtype:
        Captured sample dtype: ``"float64"`` (default) or ``"float32"``.
        The noise draws always come from the float64 RNG stream (so the
        randomness consumed is identical either way) and are cast before
        the add; the bandwidth filter recursion runs in float64 (see
        :meth:`_lowpass`) and the noise add and quantizer then run in the
        output dtype.  Near a quantizer decision boundary the float32
        rounding can land one LSB off the float64 result — that is part
        of the opt-in, bounded end to end by the float32 drift budgets.
    """

    sample_rate_msps: float = 250.0
    bandwidth_mhz: float = 100.0
    noise_std: float = 2.0
    adc_bits: int = 8
    full_scale: float = 400.0
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.sample_rate_msps <= 0:
            raise ConfigurationError("sample_rate_msps must be positive")
        if self.bandwidth_mhz < 0 or self.noise_std < 0:
            raise ConfigurationError("bandwidth and noise must be >= 0")
        if self.adc_bits < 0 or self.adc_bits > 16:
            raise ConfigurationError("adc_bits must be within [0, 16]")
        if self.full_scale <= 0:
            raise ConfigurationError("full_scale must be positive")
        if self.dtype not in ("float64", "float32"):
            raise ConfigurationError(
                f"dtype must be 'float64' or 'float32', got {self.dtype!r}"
            )

    def capture(
        self, analog: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Apply bandwidth, noise and quantization to ``(n, S)`` traces."""
        out_dtype = np.dtype(self.dtype)
        traces = np.asarray(analog, dtype=out_dtype)
        if traces.ndim != 2:
            raise ConfigurationError("analog traces must be a 2-D matrix")
        if self.bandwidth_mhz > 0:
            traces = self._lowpass(traces)
        if self.noise_std > 0:
            if rng is None:
                raise ConfigurationError(
                    "an rng is required when noise_std > 0"
                )
            noise = rng.normal(0.0, self.noise_std, traces.shape)
            noise = noise.astype(out_dtype, copy=False)
            # The freshly-drawn noise buffer is ours: add into it rather
            # than allocating a third (n, S) array per chunk.
            np.add(traces, noise, out=noise)
            traces = noise
        if self.adc_bits > 0:
            traces = self._quantize(traces)
        return traces

    def _lowpass(self, traces: np.ndarray) -> np.ndarray:
        """Single-pole IIR low-pass at the -3 dB bandwidth.

        The recursion runs in float64 regardless of the capture dtype:
        the pre-noise analog tail decays exponentially and would underflow
        a float32 recursion into denormals (microcoded arithmetic, ~3x the
        filter cost).  The result is narrowed back afterwards.
        """
        dt_s = 1e-6 / self.sample_rate_msps
        rc = 1.0 / (2.0 * np.pi * self.bandwidth_mhz * 1e6)
        alpha = dt_s / (rc + dt_s)
        b = np.array([alpha])
        a = np.array([1.0, alpha - 1.0])
        return lfilter(b, a, traces, axis=1).astype(traces.dtype, copy=False)

    def _quantize(self, traces: np.ndarray) -> np.ndarray:
        """Mid-rise quantization onto ``2**adc_bits`` levels over the range."""
        levels = 2**self.adc_bits
        lsb = self.full_scale / levels
        # clip allocates the output buffer; scale, round and rescale then
        # run in place (same operation sequence, one allocation).
        clipped = np.clip(traces, 0.0, self.full_scale - lsb / 2)
        clipped /= lsb
        np.round(clipped, out=clipped)
        clipped *= lsb
        return clipped
