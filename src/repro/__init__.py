"""repro — reproduction of RFTC (DAC 2019).

RFTC (Runtime Frequency Tuning Countermeasure) protects an FPGA AES core
from power analysis by clocking every round from a randomly retuned MMCM.
This library rebuilds the whole system in Python: the AES circuit model,
the 7-series clocking substrate (MMCM, DRP, BUFG, block RAM, LFSR), the
RFTC planner/controller, a synthetic power-measurement channel, the full
attack battery (CPA and DTW/PCA/FFT-preprocessed CPA), TVLA, the
related-work baselines, the per-figure/per-table experiment harness, and a
streaming campaign pipeline (``repro.pipeline`` + ``repro.store``) that
runs paper-scale trace counts in bounded memory on a worker pool.

Quick start::

    import numpy as np
    from repro.experiments import build_rftc, build_unprotected
    from repro.power import AcquisitionCampaign
    from repro.attacks import cpa_attack

    scenario = build_rftc(m_outputs=3, p_configs=64)
    traces = AcquisitionCampaign(scenario.device, seed=1).collect(2000)
    result = cpa_attack(traces.traces, traces.ciphertexts, byte_indices=(0,))

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.errors import (
    AcquisitionError,
    AttackError,
    ConfigurationError,
    FrequencyRangeError,
    LockError,
    PlanningError,
    ReconfigurationError,
    ReproError,
)

__version__ = "1.1.0"

__all__ = [
    "AcquisitionError",
    "AttackError",
    "ConfigurationError",
    "FrequencyRangeError",
    "LockError",
    "PlanningError",
    "ReconfigurationError",
    "ReproError",
    "__version__",
]
