"""Dynamic Time Warping alignment (van Woudenberg et al. — CT-RSA 2011) [22].

DTW finds the minimum-cost monotone path matching a misaligned trace to a
reference, then *warps* the trace onto the reference's time axis; CPA on
the warped traces defeats countermeasures that only shift operations in
time.  Complexity is O(n^2) per trace; a Sakoe–Chiba band keeps it
tractable (the unbanded result is recovered with ``band=None``, and tests
pin banded == full for small inputs).

Against RFTC the paper observes DTW failing once many frequencies are in
play: warping can move power peaks but cannot repair the *shape* change a
different clock period gives each round's pulse — the mechanism this
implementation reproduces.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import AttackError, ConfigurationError


def _cost_matrix(
    reference: np.ndarray, trace: np.ndarray, band: Optional[int]
) -> np.ndarray:
    """Accumulated-cost DP matrix with an optional Sakoe–Chiba band."""
    n = reference.size
    m = trace.size
    if band is not None:
        if band < 1:
            raise ConfigurationError("band must be >= 1")
        band = max(band, abs(n - m) + 1)
    acc = np.full((n + 1, m + 1), np.inf)
    acc[0, 0] = 0.0
    for i in range(1, n + 1):
        if band is None:
            lo, hi = 1, m
        else:
            center = int(round(i * m / n))
            lo = max(1, center - band)
            hi = min(m, center + band)
        cost = np.abs(trace[lo - 1 : hi] - reference[i - 1])
        prev_diag = acc[i - 1, lo - 1 : hi]
        prev_up = acc[i - 1, lo:hi + 1]
        # Row-wise DP: the "left" dependency is within the current row, so
        # resolve it with a sequential scan over the (short) band.
        row = np.minimum(prev_diag, prev_up) + cost
        running = acc[i, lo - 1]
        for j in range(row.size):
            step = min(row[j], running + cost[j])
            acc[i, lo + j] = step
            running = step
    return acc


def dtw_path(
    reference: np.ndarray, trace: np.ndarray, band: Optional[int] = None
) -> Tuple[np.ndarray, np.ndarray, float]:
    """Optimal warping path between ``reference`` and ``trace``.

    Returns ``(ref_indices, trace_indices, total_cost)`` with the classic
    unit-slope-step DTW moves (match, insert, delete).
    """
    reference = np.asarray(reference, dtype=np.float64).ravel()
    trace = np.asarray(trace, dtype=np.float64).ravel()
    if reference.size < 2 or trace.size < 2:
        raise AttackError("DTW requires at least 2 samples per trace")
    acc = _cost_matrix(reference, trace, band)
    if not np.isfinite(acc[-1, -1]):
        raise AttackError(
            "DTW band too narrow: no complete path (increase band)"
        )
    i, j = reference.size, trace.size
    ref_idx = [i - 1]
    trc_idx = [j - 1]
    while i > 1 or j > 1:
        candidates = (
            (acc[i - 1, j - 1], i - 1, j - 1),
            (acc[i - 1, j], i - 1, j),
            (acc[i, j - 1], i, j - 1),
        )
        _, i, j = min(candidates, key=lambda t: t[0])
        ref_idx.append(i - 1)
        trc_idx.append(j - 1)
    return (
        np.array(ref_idx[::-1]),
        np.array(trc_idx[::-1]),
        float(acc[-1, -1]),
    )


def dtw_distance(
    reference: np.ndarray, trace: np.ndarray, band: Optional[int] = None
) -> float:
    """Total cost of the optimal warping path."""
    reference = np.asarray(reference, dtype=np.float64).ravel()
    trace = np.asarray(trace, dtype=np.float64).ravel()
    if reference.size < 2 or trace.size < 2:
        raise AttackError("DTW requires at least 2 samples per trace")
    acc = _cost_matrix(reference, trace, band)
    return float(acc[-1, -1])


def warp_to_reference(
    reference: np.ndarray, trace: np.ndarray, band: Optional[int] = None
) -> np.ndarray:
    """Resample ``trace`` onto the reference time axis along the DTW path.

    Where several trace samples map to one reference index, they are
    averaged (the standard elastic-alignment convention).
    """
    ref_idx, trc_idx, _ = dtw_path(reference, trace, band)
    warped = np.zeros(reference.size)
    counts = np.zeros(reference.size)
    np.add.at(warped, ref_idx, trace[trc_idx])
    np.add.at(counts, ref_idx, 1.0)
    counts[counts == 0] = 1.0
    return warped / counts


def dtw_align(
    traces: np.ndarray,
    reference: Optional[np.ndarray] = None,
    band: Optional[int] = None,
) -> np.ndarray:
    """Warp every trace onto a common reference (default: the mean trace)."""
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 2:
        raise AttackError("traces must be (n, S)")
    ref = traces.mean(axis=0) if reference is None else np.asarray(reference)
    out = np.empty_like(traces)
    for k in range(traces.shape[0]):
        out[k] = warp_to_reference(ref, traces[k], band)
    return out


def batch_dtw_align(
    traces: np.ndarray,
    reference: np.ndarray,
    band: int,
    chunk: int = 2048,
) -> np.ndarray:
    """Banded DTW alignment of many equal-length traces, vectorized.

    Functionally identical to calling :func:`warp_to_reference` per trace
    with the same band (the test suite pins this), but the DP recursion and
    the path backtracking run as numpy operations *across traces*, which is
    1-2 orders of magnitude faster for campaign-sized inputs.

    Parameters
    ----------
    traces:
        ``(n, S)`` traces; the reference must also have S samples.
    reference:
        Common alignment target.
    band:
        Sakoe–Chiba half-width (>= 1).
    chunk:
        Traces per internal batch (bounds the banded-DP working set).
    """
    traces = np.asarray(traces, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64).ravel()
    if traces.ndim != 2:
        raise AttackError("traces must be (n, S)")
    s = traces.shape[1]
    if reference.size != s:
        raise AttackError("reference length must match the trace length")
    if s < 2:
        raise AttackError("DTW requires at least 2 samples per trace")
    if band < 1:
        raise ConfigurationError("band must be >= 1")
    if chunk < 1:
        raise ConfigurationError("chunk must be >= 1")
    out = np.empty_like(traces)
    for start in range(0, traces.shape[0], chunk):
        stop = min(start + chunk, traces.shape[0])
        out[start:stop] = _batch_dtw_chunk(traces[start:stop], reference, band)
    return out


def _batch_dtw_chunk(
    traces: np.ndarray, reference: np.ndarray, band: int
) -> np.ndarray:
    """Banded DP + backtrack for one chunk of equal-length traces.

    Band storage: row i keeps columns j in [i-band-1, i+band+1], local
    index l = j - i + band + 1.  With that offset the three DTW
    predecessors are ``prev[l]`` (diag), ``prev[l+1]`` (up) and
    ``cur[l-1]`` (left), so rows vectorize over traces and the only Python
    loop is over (rows x band), independent of the trace count.
    """
    n, s = traces.shape
    width = 2 * band + 3
    inf = np.float64(np.inf)
    acc = np.full((n, s + 1, width), inf, dtype=np.float64)
    # Row 0: only (0, 0) is reachable; its local index is band + 1 - 0... at
    # i=0, j=0 -> l = 0 - 0 + band + 1.
    acc[:, 0, band + 1] = 0.0
    ls = np.arange(width)
    for i in range(1, s + 1):
        j = i - band - 1 + ls  # column of each local slot at this row
        valid = (j >= 1) & (j <= s) & (np.abs(j - i) <= band)
        vcols = j[valid] - 1  # trace sample index
        cost = np.abs(traces[:, vcols] - reference[i - 1])
        prev = acc[:, i - 1, :]
        diag = prev[:, valid]
        up_idx = np.minimum(ls[valid] + 1, width - 1)
        up = prev[:, up_idx]
        cand = np.minimum(diag, up)
        row = acc[:, i, :]
        vls = ls[valid]
        running = row[:, vls[0] - 1] if vls[0] >= 1 else np.full(n, inf)
        for k, slot in enumerate(vls):
            cell = np.minimum(cand[:, k], running) + cost[:, k]
            row[:, slot] = cell
            running = cell
    # Backtrack all traces simultaneously.
    warped = np.zeros((n, s), dtype=np.float64)
    counts = np.zeros((n, s), dtype=np.float64)
    i_cur = np.full(n, s, dtype=np.int64)
    j_cur = np.full(n, s, dtype=np.int64)
    rows = np.arange(n)
    done = np.zeros(n, dtype=bool)
    for _ in range(2 * s + 1):
        live = rows[~done]
        np.add.at(warped, (live, i_cur[live] - 1), traces[live, j_cur[live] - 1])
        np.add.at(counts, (live, i_cur[live] - 1), 1.0)
        done |= (i_cur == 1) & (j_cur == 1)
        active = ~done
        if not active.any():
            break
        l_cur = j_cur - i_cur + band + 1
        diag_v = _banded_get(acc, rows, i_cur - 1, l_cur, width)
        up_v = _banded_get(acc, rows, i_cur - 1, l_cur + 1, width)
        left_v = _banded_get(acc, rows, i_cur, l_cur - 1, width)
        # Moves must stay inside the grid.
        diag_v = np.where((i_cur > 1) & (j_cur > 1), diag_v, inf)
        up_v = np.where(i_cur > 1, up_v, inf)
        left_v = np.where(j_cur > 1, left_v, inf)
        best = np.argmin(np.stack([diag_v, up_v, left_v]), axis=0)
        step_i = np.where(best == 2, 0, 1)
        step_j = np.where(best == 1, 0, 1)
        i_cur = np.where(active, i_cur - step_i, i_cur)
        j_cur = np.where(active, j_cur - step_j, j_cur)
    counts[counts == 0] = 1.0
    return warped / counts


def _banded_get(
    acc: np.ndarray, rows: np.ndarray, i: np.ndarray, slot: np.ndarray, width: int
) -> np.ndarray:
    """Read acc[row, i, slot] treating out-of-band local indices as +inf."""
    ok = (slot >= 0) & (slot < width) & (i >= 0)
    li = np.clip(slot, 0, width - 1)
    ii = np.clip(i, 0, acc.shape[1] - 1)
    values = acc[rows, ii, li]
    return np.where(ok, values, np.inf)


class DtwAligner:
    """Preprocessor object for the success-rate machinery.

    Parameters
    ----------
    band:
        Sakoe–Chiba band half-width in samples (None = exact DTW).  The
        default 64 spans the full RFTC completion-time spread (~520 ns at
        8 ns effective sampling) — a too-narrow band silently prevents the
        warp from reaching the misaligned rounds.
    decimate:
        Keep every k-th sample before aligning — DTW degrades gracefully
        under decimation and the cost drops quadratically.
    reference:
        "first" (default) aligns to the subset's first trace — a *sharp*
        anchor whose rounds other traces can lock onto; "mean" aligns to
        the subset's mean trace, which for strongly randomized clocks is a
        blur that measurably degrades the realignment (this repository's
        ablation benchmarks quantify the gap).
    """

    def __init__(
        self,
        band: Optional[int] = 64,
        decimate: int = 2,
        reference: str = "first",
    ):
        if decimate < 1:
            raise ConfigurationError("decimate must be >= 1")
        if reference not in ("mean", "first"):
            raise ConfigurationError("reference must be 'mean' or 'first'")
        self.band = band
        self.decimate = int(decimate)
        self.reference = reference

    def __call__(self, traces: np.ndarray) -> np.ndarray:
        traces = np.asarray(traces, dtype=np.float64)
        if self.decimate > 1:
            traces = traces[:, :: self.decimate]
        ref = traces.mean(axis=0) if self.reference == "mean" else traces[0]
        if self.band is None:
            return dtw_align(traces, reference=ref, band=None)
        return batch_dtw_align(traces, ref, band=self.band)
