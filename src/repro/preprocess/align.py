"""Static (rigid-shift) alignment and normalization utilities.

Rigid cross-correlation alignment is the cheapest realignment attack; it
cannot help against per-round randomization (the misalignment is not a
single shift) but serves as a sanity baseline and as a pre-stage for DTW.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

try:  # scipy's sizing helper makes the FFT lengths friendly; optional.
    from scipy.fft import next_fast_len as _next_fast_len
except ImportError:  # pragma: no cover - scipy is a declared dependency
    _next_fast_len = None

from repro.errors import AttackError, ConfigurationError


def normalize_traces(traces: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance per trace (constant traces stay zero)."""
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 2:
        raise AttackError("traces must be (n, S)")
    centered = traces - traces.mean(axis=1, keepdims=True)
    std = centered.std(axis=1, keepdims=True)
    std[std == 0] = 1.0
    return centered / std


def _best_shift(reference: np.ndarray, trace: np.ndarray, max_shift: int) -> int:
    """Shift (in samples) maximizing cross-correlation with the reference."""
    corr = np.correlate(trace, reference, mode="full")
    center = reference.size - 1
    lo = center - max_shift
    hi = center + max_shift + 1
    window = corr[lo:hi]
    return int(np.argmax(window)) - max_shift


def best_shifts(
    traces: np.ndarray, reference: np.ndarray, max_shift: int
) -> np.ndarray:
    """Per-trace cross-correlation shifts against a reference, batched.

    One FFT cross-correlation over the whole trace matrix replaces the
    per-trace ``np.correlate`` loop: correlating every trace against the
    same reference is a convolution with the reversed reference, so all
    rows share the reference transform.  Matches :func:`_best_shift`'s
    argmax-window semantics (same window, same tie-breaking toward the
    most negative shift).
    """
    traces = np.asarray(traces, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if traces.ndim != 2:
        raise AttackError("traces must be (n, S)")
    if reference.ndim != 1 or reference.size == 0:
        raise ConfigurationError("reference must be a non-empty 1-D trace")
    if max_shift < 0 or max_shift > reference.size - 1:
        raise ConfigurationError(
            "max_shift must be within [0, reference length)"
        )
    length = traces.shape[1] + reference.size - 1
    fft_len = _next_fast_len(length) if _next_fast_len is not None else length
    spectrum = np.fft.rfft(traces, fft_len, axis=1)
    spectrum *= np.fft.rfft(reference[::-1], fft_len)[None, :]
    corr = np.fft.irfft(spectrum, fft_len, axis=1)[:, :length]
    center = reference.size - 1
    window = corr[:, center - max_shift : center + max_shift + 1]
    return np.argmax(window, axis=1) - max_shift


def static_align(
    traces: np.ndarray,
    reference: Optional[np.ndarray] = None,
    max_shift: int = 32,
) -> np.ndarray:
    """Rigidly shift every trace to best match a reference.

    Shifts come from :func:`best_shifts` (batched FFT cross-correlation);
    samples shifted in from outside the window are zero-filled.  Output is
    equivalent to the direct per-trace ``np.correlate`` loop (asserted by
    the test suite).
    """
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 2:
        raise AttackError("traces must be (n, S)")
    if max_shift < 0 or max_shift >= traces.shape[1]:
        raise ConfigurationError(
            "max_shift must be within [0, n_samples)"
        )
    ref = traces.mean(axis=0) if reference is None else np.asarray(reference)
    s = traces.shape[1]
    shifts = best_shifts(traces, ref, max_shift)
    columns = np.arange(s)[None, :] + shifts[:, None]
    valid = (columns >= 0) & (columns < s)
    gathered = np.take_along_axis(traces, np.clip(columns, 0, s - 1), axis=1)
    return np.where(valid, gathered, 0.0)
