"""Static (rigid-shift) alignment and normalization utilities.

Rigid cross-correlation alignment is the cheapest realignment attack; it
cannot help against per-round randomization (the misalignment is not a
single shift) but serves as a sanity baseline and as a pre-stage for DTW.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import AttackError, ConfigurationError


def normalize_traces(traces: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance per trace (constant traces stay zero)."""
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 2:
        raise AttackError("traces must be (n, S)")
    centered = traces - traces.mean(axis=1, keepdims=True)
    std = centered.std(axis=1, keepdims=True)
    std[std == 0] = 1.0
    return centered / std


def _best_shift(reference: np.ndarray, trace: np.ndarray, max_shift: int) -> int:
    """Shift (in samples) maximizing cross-correlation with the reference."""
    corr = np.correlate(trace, reference, mode="full")
    center = reference.size - 1
    lo = center - max_shift
    hi = center + max_shift + 1
    window = corr[lo:hi]
    return int(np.argmax(window)) - max_shift


def static_align(
    traces: np.ndarray,
    reference: Optional[np.ndarray] = None,
    max_shift: int = 32,
) -> np.ndarray:
    """Rigidly shift every trace to best match a reference.

    Samples shifted in from outside the window are zero-filled.
    """
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 2:
        raise AttackError("traces must be (n, S)")
    if max_shift < 0 or max_shift >= traces.shape[1]:
        raise ConfigurationError(
            "max_shift must be within [0, n_samples)"
        )
    ref = traces.mean(axis=0) if reference is None else np.asarray(reference)
    out = np.zeros_like(traces)
    s = traces.shape[1]
    for k in range(traces.shape[0]):
        shift = _best_shift(ref, traces[k], max_shift)
        if shift >= 0:
            out[k, : s - shift] = traces[k, shift:]
        else:
            out[k, -shift:] = traces[k, : s + shift]
    return out
