"""Rapid Alignment Method (Muijrers, van Woudenberg, Batina — CARDIS 2011).

The paper's Sec. 8 proposes testing RAM against RFTC as future work; this
module implements it.  RAM aligns traces orders of magnitude faster than
DTW by matching one short *reference pattern* (a distinctive window cut
from a reference trace) against each trace via normalized cross-correlation
and shifting the trace so the best match lands at the reference position.
It defeats countermeasures that *rigidly shift* the trace, but — like
static alignment — cannot repair per-round misalignment, which is why
frequency randomization survives it.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import AttackError, ConfigurationError


def select_reference_pattern(
    reference: np.ndarray, width: int, start: Optional[int] = None
) -> Tuple[np.ndarray, int]:
    """Cut the pattern window from a reference trace.

    Without an explicit ``start``, the window with the highest energy is
    chosen (RAM's heuristic: a distinctive, high-activity feature).
    Returns ``(pattern, start_index)``.
    """
    reference = np.asarray(reference, dtype=np.float64).ravel()
    if width < 2 or width > reference.size:
        raise ConfigurationError(
            f"pattern width must be in [2, {reference.size}], got {width}"
        )
    if start is None:
        energy = np.convolve(reference**2, np.ones(width), mode="valid")
        start = int(np.argmax(energy))
    if not 0 <= start <= reference.size - width:
        raise ConfigurationError("pattern start outside the reference trace")
    return reference[start : start + width].copy(), start


def _normalized_xcorr(traces: np.ndarray, pattern: np.ndarray) -> np.ndarray:
    """Normalized cross-correlation of the pattern at every offset.

    Vectorized over traces via FFT convolution; returns ``(n, S - w + 1)``.
    """
    n, s = traces.shape
    w = pattern.size
    p = pattern - pattern.mean()
    p_norm = np.sqrt((p * p).sum())
    if p_norm == 0:
        raise AttackError("reference pattern has no variance")
    # Sliding sums via cumulative sums for mean/std per window.
    csum = np.cumsum(np.pad(traces, ((0, 0), (1, 0))), axis=1)
    csum2 = np.cumsum(np.pad(traces**2, ((0, 0), (1, 0))), axis=1)
    win_sum = csum[:, w:] - csum[:, :-w]
    win_sum2 = csum2[:, w:] - csum2[:, :-w]
    win_var = win_sum2 - win_sum**2 / w
    win_var[win_var < 0] = 0.0
    # Correlation numerator via FFT-based correlation with the pattern.
    n_fft = 1 << int(np.ceil(np.log2(s + w)))
    f_traces = np.fft.rfft(traces, n_fft, axis=1)
    f_pattern = np.fft.rfft(p[::-1], n_fft)
    corr_full = np.fft.irfft(f_traces * f_pattern[None, :], n_fft, axis=1)
    numerator = corr_full[:, w - 1 : s]
    denom = np.sqrt(win_var) * p_norm
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(denom > 0, numerator / denom, 0.0)


class RapidAligner:
    """RAM preprocessor: pattern-match and rigidly shift every trace.

    Parameters
    ----------
    pattern_width:
        Samples in the reference pattern.
    max_shift:
        Largest allowed displacement from the reference position; matches
        farther away are clamped (RAM discards them, which for the
        success-rate machinery is equivalent to leaving them misaligned).
    min_match:
        Matches with normalized correlation below this keep the trace
        unshifted (RAM's rejection criterion).
    """

    def __init__(
        self,
        pattern_width: int = 24,
        max_shift: int = 96,
        min_match: float = 0.0,
    ):
        if pattern_width < 2:
            raise ConfigurationError("pattern_width must be >= 2")
        if max_shift < 0:
            raise ConfigurationError("max_shift must be >= 0")
        if not 0.0 <= min_match <= 1.0:
            raise ConfigurationError("min_match must be in [0, 1]")
        self.pattern_width = int(pattern_width)
        self.max_shift = int(max_shift)
        self.min_match = float(min_match)

    def __call__(self, traces: np.ndarray) -> np.ndarray:
        traces = np.asarray(traces, dtype=np.float64)
        if traces.ndim != 2:
            raise AttackError("traces must be (n, S)")
        if traces.shape[1] <= self.pattern_width:
            raise AttackError("traces shorter than the pattern")
        pattern, ref_pos = select_reference_pattern(
            traces[0], self.pattern_width
        )
        xcorr = _normalized_xcorr(traces, pattern)
        lo = max(0, ref_pos - self.max_shift)
        hi = min(xcorr.shape[1], ref_pos + self.max_shift + 1)
        window = xcorr[:, lo:hi]
        best = window.argmax(axis=1) + lo
        quality = window.max(axis=1)
        shifts = np.where(quality >= self.min_match, best - ref_pos, 0)
        out = np.zeros_like(traces)
        s = traces.shape[1]
        for i, shift in enumerate(shifts):
            if shift >= 0:
                out[i, : s - shift] = traces[i, shift:]
            else:
                out[i, -shift:] = traces[i, : s + shift]
        return out
