"""PCA preprocessing for CPA (Hogenboom [12]; Souissi et al. [20]).

Misaligned traces are projected onto their leading principal components;
the hypothesis being that secret-dependent energy concentrates in the
first components while misalignment spreads as "noise" into higher ones.
The paper finds PCA-CPA performs like plain CPA against RFTC — when the
randomization is large, no low-dimensional subspace collects the secret
round — and this implementation reproduces exactly that behaviour.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import AttackError, ConfigurationError


class PcaPreprocessor:
    """Project traces onto their first ``n_components`` principal components.

    The projection is fit on the *attacked subset itself* (an unsupervised
    transform needs no key knowledge), exactly as an adversary would.

    Parameters
    ----------
    n_components:
        Components kept; the PCA-CPA literature uses a handful.
    center:
        Subtract the mean trace before the SVD (standard).
    whiten:
        Scale components to unit variance; off by default — CPA is
        scale-invariant per column, so whitening only matters for
        multi-component fusion studies.
    """

    def __init__(
        self,
        n_components: int = 10,
        center: bool = True,
        whiten: bool = False,
    ):
        if n_components < 1:
            raise ConfigurationError("n_components must be >= 1")
        self.n_components = int(n_components)
        self.center = bool(center)
        self.whiten = bool(whiten)
        self.components_: Optional[np.ndarray] = None
        self.explained_variance_: Optional[np.ndarray] = None

    def fit(self, traces: np.ndarray) -> "PcaPreprocessor":
        traces = np.asarray(traces, dtype=np.float64)
        if traces.ndim != 2:
            raise AttackError("traces must be (n, S)")
        if traces.shape[0] < 2:
            raise AttackError("PCA requires at least 2 traces")
        k = min(self.n_components, min(traces.shape))
        x = traces - traces.mean(axis=0) if self.center else traces
        # Economy SVD: components are the right singular vectors.
        _, s, vt = np.linalg.svd(x, full_matrices=False)
        self.components_ = vt[:k]
        self.explained_variance_ = (s[:k] ** 2) / max(1, traces.shape[0] - 1)
        return self

    def transform(self, traces: np.ndarray) -> np.ndarray:
        if self.components_ is None:
            raise AttackError("fit the PCA before transforming")
        traces = np.asarray(traces, dtype=np.float64)
        x = traces - traces.mean(axis=0) if self.center else traces
        scores = x @ self.components_.T
        if self.whiten:
            scale = np.sqrt(self.explained_variance_)
            scale[scale == 0] = 1.0
            scores = scores / scale
        return scores

    def __call__(self, traces: np.ndarray) -> np.ndarray:
        """Fit-and-transform on the subset (the SR-machinery contract)."""
        return self.fit(traces).transform(traces)
