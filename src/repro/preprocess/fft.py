"""FFT-magnitude preprocessing (Muijrers et al. [16]; Oswald & Paar [17]).

The magnitude spectrum of a trace is invariant to circular time shifts, so
correlating in the frequency domain defeats *pure misalignment*
countermeasures.  Against RFTC the paper finds FFT-CPA the strongest
preprocessor at small P but still failing at large P: changing the clock
*frequency* (not just the phase) moves the signal energy to different
spectral bins per trace, which magnitude spectra cannot undo.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import AttackError, ConfigurationError


def fft_magnitude(
    traces: np.ndarray,
    n_bins: Optional[int] = None,
    window: Optional[str] = "hann",
    log_scale: bool = False,
) -> np.ndarray:
    """|rFFT| of every trace.

    Parameters
    ----------
    traces:
        ``(n, S)`` time-domain traces.
    n_bins:
        Keep only the first ``n_bins`` frequency bins (low frequencies
        carry the round-rate energy; discarding the tail is standard and
        cheapens the CPA).
    window:
        "hann" applies a Hann window before the transform (reduces
        spectral leakage); None transforms raw.
    log_scale:
        Return log(1 + |X|) — compresses dominant bins.
    """
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 2:
        raise AttackError("traces must be (n, S)")
    if window not in (None, "hann"):
        raise ConfigurationError("window must be None or 'hann'")
    x = traces
    if window == "hann":
        x = x * np.hanning(traces.shape[1])[None, :]
    spectrum = np.abs(np.fft.rfft(x, axis=1))
    if n_bins is not None:
        if n_bins < 1:
            raise ConfigurationError("n_bins must be >= 1")
        spectrum = spectrum[:, :n_bins]
    if log_scale:
        spectrum = np.log1p(spectrum)
    return spectrum


class FftPreprocessor:
    """Callable wrapper for the success-rate machinery."""

    def __init__(
        self,
        n_bins: Optional[int] = None,
        window: Optional[str] = "hann",
        log_scale: bool = False,
    ):
        self.n_bins = n_bins
        self.window = window
        self.log_scale = log_scale

    def __call__(self, traces: np.ndarray) -> np.ndarray:
        return fft_magnitude(
            traces,
            n_bins=self.n_bins,
            window=self.window,
            log_scale=self.log_scale,
        )
