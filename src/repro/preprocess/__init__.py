"""Trace preprocessing used to attack randomization countermeasures.

Each preprocessor is a callable ``(traces) -> transformed_traces`` suitable
for :func:`repro.attacks.success_rate.success_rate_curve`'s ``preprocess``
hook: DTW elastic alignment [22], PCA projection [12, 20], FFT magnitude
[16, 17], and simple static alignment.
"""

from repro.preprocess.align import best_shifts, normalize_traces, static_align
from repro.preprocess.dtw import (
    DtwAligner,
    batch_dtw_align,
    dtw_align,
    dtw_distance,
    dtw_path,
)
from repro.preprocess.fft import FftPreprocessor, fft_magnitude
from repro.preprocess.pca import PcaPreprocessor
from repro.preprocess.ram import RapidAligner, select_reference_pattern

__all__ = [
    "normalize_traces",
    "best_shifts",
    "static_align",
    "DtwAligner",
    "batch_dtw_align",
    "dtw_align",
    "dtw_distance",
    "dtw_path",
    "FftPreprocessor",
    "fft_magnitude",
    "PcaPreprocessor",
    "RapidAligner",
    "select_reference_pattern",
]
