"""Campaign jobs and their durable JSONL journal.

A :class:`CampaignJob` is one tenant's request to run a campaign: the
canonical spec fields, the run parameters, scheduling metadata, and —
once finished — the result payload.  Every state transition is appended
to a :class:`JobStore` journal (one JSON object per line), which is the
service's only durable state: on restart the journal is replayed to
rebuild every job, re-warm the result cache, and requeue work that was
queued or running when the daemon died (resuming durable jobs through
their :class:`~repro.pipeline.CampaignCheckpoint`).

Journal records
---------------
``{"record": "job", "job": {...}}`` — a submission, with the full job
document.  ``{"record": "update", "job_id": ..., "fields": {...}}`` — a
transition, carrying only the fields that changed.  Appends are
line-buffered; a crash mid-write leaves at most one torn final line,
which replay tolerates (and reports) — the torn fragment is truncated
from the file before the append handle opens, so later appends start on
a clean line boundary.  A torn line *followed by valid records* means
real corruption and is a hard error.
"""

from __future__ import annotations

import errno
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import (
    ConfigurationError,
    InjectedCrashError,
    ServiceError,
    StorageExhaustedError,
)

#: Legal job states and the transitions the service performs.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

JOURNAL_SCHEMA = "rftc-service-journal/1"

#: Job fields an ``update`` record may carry.
_MUTABLE_FIELDS = frozenset(
    {
        "state", "dispatch_seq", "completion_seq", "started_at",
        "finished_at", "error", "result", "store_bytes", "cached",
        "resumed", "requeues",
    }
)


@dataclass
class CampaignJob:
    """One submitted campaign: identity, run parameters, and lifecycle.

    ``seed`` is the *effective* master seed (tenant-namespaced via
    :func:`~repro.service.tenancy.tenant_seed`); ``requested_seed`` is
    what the tenant asked for.  ``durable`` jobs checkpoint after every
    chunk and survive a daemon restart bit-identically; ``store`` jobs
    persist their traces under the service data directory and count
    against the tenant's store quota.
    """

    job_id: str
    tenant: str
    spec_fields: dict
    n_traces: int
    chunk_size: int
    seed: int
    requested_seed: int
    cache_key: str
    priority: int = 0
    durable: bool = False
    store: bool = False
    state: str = QUEUED
    submit_seq: int = 0
    dispatch_seq: Optional[int] = None
    completion_seq: Optional[int] = None
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    result: Optional[dict] = None
    store_bytes: int = 0
    cached: bool = False
    resumed: bool = False
    #: Times this job was re-queued by crash recovery.
    requeues: int = 0
    #: Runtime-only cancel flag — never journaled.
    cancel_event: threading.Event = field(
        default_factory=threading.Event, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.n_traces < 1:
            raise ConfigurationError("n_traces must be >= 1")
        if self.chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        if self.state not in JOB_STATES:
            raise ConfigurationError(f"unknown job state {self.state!r}")

    # -- views ---------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def spec(self):
        from repro.pipeline.spec import spec_from_dict

        return spec_from_dict(self.spec_fields)

    def queue_seconds(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def wall_seconds(self) -> Optional[float]:
        if self.finished_at is None or self.started_at is None:
            return None
        return self.finished_at - self.started_at

    def submit_to_done_seconds(self) -> Optional[float]:
        if self.finished_at is None:
            return None
        return self.finished_at - self.submitted_at

    # -- serialisation -------------------------------------------------

    def to_dict(self, include_result: bool = True) -> dict:
        """JSON document of the job (the journal/API representation)."""
        doc = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "spec": dict(self.spec_fields),
            "n_traces": self.n_traces,
            "chunk_size": self.chunk_size,
            "seed": self.seed,
            "requested_seed": self.requested_seed,
            "cache_key": self.cache_key,
            "priority": self.priority,
            "durable": self.durable,
            "store": self.store,
            "state": self.state,
            "submit_seq": self.submit_seq,
            "dispatch_seq": self.dispatch_seq,
            "completion_seq": self.completion_seq,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "store_bytes": self.store_bytes,
            "cached": self.cached,
            "resumed": self.resumed,
            "requeues": self.requeues,
        }
        if include_result:
            doc["result"] = self.result
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "CampaignJob":
        try:
            return cls(
                job_id=str(doc["job_id"]),
                tenant=str(doc["tenant"]),
                spec_fields=dict(doc["spec"]),
                n_traces=int(doc["n_traces"]),
                chunk_size=int(doc["chunk_size"]),
                seed=int(doc["seed"]),
                requested_seed=int(doc["requested_seed"]),
                cache_key=str(doc["cache_key"]),
                priority=int(doc.get("priority", 0)),
                durable=bool(doc.get("durable", False)),
                store=bool(doc.get("store", False)),
                state=str(doc.get("state", QUEUED)),
                submit_seq=int(doc.get("submit_seq", 0)),
                dispatch_seq=doc.get("dispatch_seq"),
                completion_seq=doc.get("completion_seq"),
                submitted_at=float(doc.get("submitted_at", 0.0)),
                started_at=doc.get("started_at"),
                finished_at=doc.get("finished_at"),
                error=doc.get("error"),
                result=doc.get("result"),
                store_bytes=int(doc.get("store_bytes", 0)),
                cached=bool(doc.get("cached", False)),
                resumed=bool(doc.get("resumed", False)),
                requeues=int(doc.get("requeues", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed job document: {exc!r}") from exc


class JobStore:
    """All known jobs plus their append-only JSONL journal.

    The store is the service's in-memory index *and* its durability
    layer.  Mutations happen under the owning service's lock; the store
    holds its own small lock only around file appends, so journal lines
    never interleave.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._jobs: Dict[str, CampaignJob] = {}
        self._order: List[str] = []
        self._write_lock = threading.Lock()
        self._handle = None
        #: Optional :class:`~repro.testing.faults.FaultPlan`; when its
        #: ``journal-torn@record=n`` directive matches the n-th append,
        #: the append writes a torn fragment and simulates a crash.
        self.faults = None
        #: Journal records replayed + appended — the backlog measure the
        #: service's load-shedding gate and :meth:`compact` work from.
        self.record_count = 0
        self.torn_line: Optional[int] = None
        #: Byte offset to truncate the file to (end of the last valid
        #: record) when replay found a torn final line.
        self._truncate_to: Optional[int] = None
        #: True when the final record parsed but lost its newline.
        self._repair_newline = False
        self._replay()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._truncate_to is not None:
            # Drop the torn fragment so the first post-recovery append
            # starts on a clean line boundary instead of concatenating
            # onto it (which would corrupt the journal mid-file).
            with open(self.path, "r+b") as handle:
                handle.truncate(self._truncate_to)
        elif self._repair_newline:
            with open(self.path, "ab") as handle:
                handle.write(b"\n")
        self._handle = open(self.path, "a", encoding="utf-8")

    # -- index ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._jobs)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._jobs

    def get(self, job_id: str) -> Optional[CampaignJob]:
        return self._jobs.get(job_id)

    def jobs(self) -> List[CampaignJob]:
        """Every job, in submission order."""
        return [self._jobs[job_id] for job_id in self._order]

    def max_seq(self, attr: str) -> int:
        """Highest ``submit_seq``/``dispatch_seq``/``completion_seq`` seen."""
        values = [
            getattr(job, attr)
            for job in self._jobs.values()
            if getattr(job, attr) is not None
        ]
        return max(values) if values else -1

    # -- journaling ----------------------------------------------------

    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._write_lock:
            sequence = self.record_count + 1
            if (
                self.faults is not None
                and self.faults.journal_torn_record == sequence
            ):
                # Simulated crash mid-append: half the record lands with
                # no newline — exactly the torn tail replay must repair.
                self._handle.write(line[: max(1, len(line) // 2)])
                self._handle.flush()
                raise InjectedCrashError(
                    f"injected crash tearing journal record {sequence}"
                )
            offset = self._handle.tell()
            try:
                self._handle.write(line + "\n")
                self._handle.flush()
            except OSError as exc:
                # Roll the file back to the pre-append offset so a short
                # write (disk full) never leaves a torn record for the
                # *running* service — the journal stays replayable and
                # appendable once space frees up.
                try:
                    self._handle.seek(offset)
                    self._handle.truncate(offset)
                except OSError:  # pragma: no cover - rollback best-effort
                    pass
                if exc.errno in (errno.ENOSPC, errno.EDQUOT):
                    raise StorageExhaustedError(
                        f"out of disk space appending journal record "
                        f"{sequence}: {exc}"
                    ) from exc
                raise
            self.record_count = sequence

    def add(self, job: CampaignJob) -> None:
        """Index a new job and journal its submission record."""
        if job.job_id in self._jobs:
            raise ServiceError(f"duplicate job id {job.job_id!r}")
        # Journal before indexing: if the append dies (disk full) the
        # in-memory view must not claim a job a restart would lose.
        self._append({"record": "job", "job": job.to_dict()})
        self._jobs[job.job_id] = job
        self._order.append(job.job_id)

    def update(self, job: CampaignJob, **fields) -> None:
        """Apply ``fields`` to ``job`` and journal the transition."""
        unknown = set(fields) - _MUTABLE_FIELDS
        if unknown:
            raise ServiceError(f"non-journalable job fields: {sorted(unknown)}")
        if job.job_id not in self._jobs:
            raise ServiceError(f"unknown job {job.job_id!r}")
        # Journal first: a failed append leaves the in-memory record
        # matching what replay would reconstruct.
        self._append(
            {"record": "update", "job_id": job.job_id, "fields": fields}
        )
        for key, value in fields.items():
            setattr(job, key, value)

    def compact(self) -> int:
        """Rewrite the journal to one full record per job; returns lines saved.

        Replaying a compacted journal reconstructs exactly the state the
        incremental one did: job records carry the complete document
        (including results and sequence numbers), and recovery orders
        cache re-warming by ``completion_seq``, not line order.  The
        rewrite goes through a temp file + atomic rename, so a crash
        mid-compaction leaves the original journal untouched.
        """
        with self._write_lock:
            records = [
                {"record": "job", "job": self._jobs[job_id].to_dict()}
                for job_id in self._order
            ]
            tmp = self.path.with_name(self.path.name + ".tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(
                        json.dumps(
                            record, sort_keys=True, separators=(",", ":")
                        )
                        + "\n"
                    )
                handle.flush()
                os.fsync(handle.fileno())
            if self._handle is not None:
                self._handle.close()
            os.replace(tmp, self.path)
            self._handle = open(self.path, "a", encoding="utf-8")
            saved = self.record_count - len(records)
            self.record_count = len(records)
            return saved

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- replay --------------------------------------------------------

    def _replay(self) -> None:
        if not self.path.is_file():
            return
        with open(self.path, "rb") as handle:
            raw = handle.read()
        lines = raw.splitlines(keepends=True)
        offset = 0
        for lineno, line_bytes in enumerate(lines, start=1):
            try:
                text = line_bytes.decode("utf-8")
                record = json.loads(text) if text.strip() else None
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                if lineno == len(lines):
                    # Torn final line: the daemon died mid-append.  The
                    # transition it described is lost; everything before
                    # it is intact.  Truncate the fragment away so the
                    # journal stays appendable.
                    self.torn_line = lineno
                    self._truncate_to = offset
                    break
                raise ServiceError(
                    f"corrupt job journal {self.path} line {lineno}: {exc}"
                ) from exc
            if record is not None:
                self._apply(record, lineno)
                self.record_count += 1
            offset += len(line_bytes)
        else:
            # The final record is intact but may have lost its newline
            # (a partial flush); restore it before appending.
            self._repair_newline = bool(lines) and not raw.endswith(b"\n")

    def _apply(self, record: dict, lineno: int) -> None:
        kind = record.get("record")
        if kind == "job":
            job = CampaignJob.from_dict(record.get("job", {}))
            self._jobs[job.job_id] = job
            self._order.append(job.job_id)
        elif kind == "update":
            job = self._jobs.get(record.get("job_id"))
            if job is None:
                raise ServiceError(
                    f"journal {self.path} line {lineno} updates unknown job "
                    f"{record.get('job_id')!r}"
                )
            fields = record.get("fields", {})
            unknown = set(fields) - _MUTABLE_FIELDS
            if unknown:
                raise ServiceError(
                    f"journal {self.path} line {lineno} carries unknown "
                    f"fields {sorted(unknown)}"
                )
            for key, value in fields.items():
                setattr(job, key, value)
        else:
            raise ServiceError(
                f"journal {self.path} line {lineno} has unknown record "
                f"kind {kind!r}"
            )


def next_job_id(seq: int) -> str:
    return f"job-{seq:08d}"


def now() -> float:
    """Wall-clock stamp for job lifecycle fields (never part of results)."""
    return time.time()


def interrupted_jobs(store: JobStore) -> List[Tuple[CampaignJob, str]]:
    """Jobs the journal left non-terminal, with how to revive each.

    Returns ``(job, action)`` pairs in submission order: ``"requeue"``
    for jobs that never dispatched (or ran without a checkpoint) and
    ``"resume"`` for durable jobs that were running — the runner will
    continue them from their campaign checkpoint if one was written.
    """
    revived = []
    for job in store.jobs():
        if job.state == QUEUED:
            revived.append((job, "requeue"))
        elif job.state == RUNNING:
            revived.append((job, "resume" if job.durable else "requeue"))
    return revived
