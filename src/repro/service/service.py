"""The campaign service facade: admission, journaling, caching, metrics.

:class:`CampaignService` glues the pieces together behind one small API
(`submit` / `status` / `result` / `cancel` / `list_jobs`):

* admission control — tenant validation, ``max_queued`` and store-quota
  enforcement (:class:`~repro.errors.QuotaExceededError` on breach);
* the result-cache fast path — an identical ``(spec, n_traces,
  chunk_size, effective seed)`` submission completes instantly from the
  :class:`~repro.service.cache.ResultCache`, never touching the engine;
* durability — every transition lands in the
  :class:`~repro.service.jobs.JobStore` journal, and a restarted service
  replays it to rebuild a warm cache and revive interrupted jobs
  (durable ones resume from their campaign checkpoint);
* observability — ``service_*`` metrics in a
  :class:`~repro.obs.MetricsRegistry` (see ``docs/observability.md``).

Locking: one :class:`threading.Condition` (whose lock is reentrant) is
shared with the :class:`~repro.service.scheduler.Scheduler`; every piece
of mutable state — job store, cache, charges, queues — is guarded by it,
so scheduler callbacks can touch service structures without a second
lock or ordering hazards.
"""

from __future__ import annotations

import shutil
import threading
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.errors import (
    ConfigurationError,
    QuotaExceededError,
    ServiceError,
    UnknownJobError,
)
from repro.obs.metrics import MetricsRegistry
from repro.pipeline.spec import CampaignSpec, spec_to_dict
from repro.service.cache import ResultCache, cache_key
from repro.service.execution import run_job
from repro.service.jobs import (
    CANCELLED,
    DONE,
    QUEUED,
    RUNNING,
    CampaignJob,
    JobStore,
    interrupted_jobs,
    next_job_id,
    now,
)
from repro.service.scheduler import Scheduler
from repro.service.tenancy import (
    DEFAULT_TENANT,
    TenantPolicy,
    tenant_seed,
    validate_tenant,
)

#: Buckets for service latency histograms: queue waits and campaign runs
#: span milliseconds (cache hits, tiny campaigns) to minutes.
SERVICE_SECONDS_BUCKETS = (
    0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0, 120.0, 300.0,
)


class CampaignService:
    """Multi-tenant campaign execution behind a durable job API.

    Parameters
    ----------
    data_dir:
        Root of the service's durable state: ``jobs.jsonl`` (the
        journal), ``checkpoints/`` (durable jobs' resume points), and
        ``stores/<tenant>/<job_id>/`` (persisted traces).
    worker_budget:
        Campaigns run concurrently (each single-process inside its
        worker thread).
    policies:
        Per-tenant :class:`TenantPolicy`; unknown tenants get defaults.
    cache_entries:
        Result-cache capacity (FIFO eviction).
    metrics:
        Optional shared :class:`MetricsRegistry`; a private one is
        created when omitted.
    shed_queue_depth:
        Global load-shedding bound: when this many jobs are queued
        (across all tenants), :meth:`overload_state` reports shedding
        and the HTTP front-end answers submissions ``503`` +
        ``Retry-After`` until the backlog drains.  ``None`` (default)
        never sheds on queue depth.
    shed_journal_records:
        Load-shedding bound on journal backlog (records replayed +
        appended); ``None`` never sheds on it.  Distinct from the
        per-tenant ``max_queued`` quota (a ``429``): shedding is the
        *service* protecting itself, quotas are tenants' fair shares.
    compact_journal:
        Compact the journal to one record per job right after recovery
        (also reachable via ``repro-rftc serve --compact-journal``).
    job_faults:
        Optional callable ``job -> Optional[FaultPlan]`` consulted at
        dispatch; the chaos harness injects deterministic system faults
        into chosen jobs through it.  ``None`` (default) injects nothing.
    """

    def __init__(
        self,
        data_dir: Union[str, Path],
        worker_budget: int = 2,
        policies: Optional[Dict[str, TenantPolicy]] = None,
        cache_entries: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
        aging_dispatches: int = 4,
        shed_queue_depth: Optional[int] = None,
        shed_journal_records: Optional[int] = None,
        compact_journal: bool = False,
        job_faults=None,
    ):
        if shed_queue_depth is not None and shed_queue_depth < 1:
            raise ConfigurationError("shed_queue_depth must be >= 1")
        if shed_journal_records is not None and shed_journal_records < 1:
            raise ConfigurationError("shed_journal_records must be >= 1")
        self.shed_queue_depth = shed_queue_depth
        self.shed_journal_records = shed_journal_records
        self.job_faults = job_faults
        self.data_dir = Path(data_dir)
        self.checkpoint_dir = self.data_dir / "checkpoints"
        self.store_dir = self.data_dir / "stores"
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        self.store_dir.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._cond = threading.Condition()
        self.store = JobStore(self.data_dir / "jobs.jsonl")
        self.cache = ResultCache(max_entries=cache_entries)
        self.scheduler = Scheduler(
            runner=self._run,
            worker_budget=worker_budget,
            cond=self._cond,
            policies=dict(policies or {}),
            aging_dispatches=aging_dispatches,
            on_dispatch=self._on_dispatch,
            on_finalize=self._on_finalize,
        )
        self._submit_seq = self.store.max_seq("submit_seq") + 1
        #: job_ids in the order their terminal state was assigned.
        self.completion_order: List[str] = []
        self._declare_metrics()
        self._recover()
        if compact_journal:
            saved = self.store.compact()
            self.metrics.inc("service_journal_compactions_total")
            self.metrics.inc("service_journal_compacted_lines_total", saved)
            self._update_gauges()

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "CampaignService":
        self.scheduler.start()
        return self

    def shutdown(self, wait: bool = True) -> None:
        self.scheduler.shutdown(wait=wait)
        self.store.close()

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block until every accepted job reached a terminal state."""
        return self.scheduler.drain(timeout=timeout)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> bool:
        """Block until ``job_id`` is terminal; False on timeout."""
        job = self._job(job_id)
        with self._cond:
            return self._cond.wait_for(lambda: job.finished, timeout=timeout)

    # -- the API -------------------------------------------------------

    def submit(
        self,
        spec: CampaignSpec,
        n_traces: int,
        chunk_size: int = 1000,
        seed: int = 0,
        tenant: str = DEFAULT_TENANT,
        priority: int = 0,
        durable: bool = False,
        store: bool = False,
    ) -> CampaignJob:
        """Admit one campaign; returns its (journaled) job record.

        The effective master seed is ``tenant_seed(tenant, seed)`` — the
        same campaign submitted by two tenants draws disjoint randomness
        and disjoint cache entries.  A cache hit (identical spec digest,
        trace budget, chunk size, and effective seed) completes the job
        synchronously with the cached payload; ``store=True`` jobs
        always run, since the cache holds payloads, not trace stores.
        """
        if not isinstance(spec, CampaignSpec):
            raise ConfigurationError("submit needs a CampaignSpec")
        validate_tenant(tenant)
        effective_seed = tenant_seed(tenant, seed)
        key = cache_key(spec, n_traces, chunk_size, effective_seed)
        with self._cond:
            policy = self.scheduler.policies.get(tenant, TenantPolicy())
            self._enforce_quotas(tenant, policy, store)
            job = CampaignJob(
                job_id=next_job_id(self._submit_seq),
                tenant=tenant,
                spec_fields=spec_to_dict(spec),
                n_traces=int(n_traces),
                chunk_size=int(chunk_size),
                seed=effective_seed,
                requested_seed=int(seed),
                cache_key=key,
                priority=int(priority),
                durable=bool(durable),
                store=bool(store),
                submit_seq=self._submit_seq,
                submitted_at=now(),
            )
            self._submit_seq += 1
            self.store.add(job)
            self.metrics.inc("service_jobs_submitted_total", tenant=tenant)
            cached_payload = None if store else self.cache.get(key)
            if cached_payload is not None:
                self.metrics.inc("service_cache_hits_total")
                job.cached = True
                self.scheduler.finalize_now(job, cached_payload, DONE)
            else:
                self.metrics.inc("service_cache_misses_total")
                self.scheduler.submit(job)
            self._update_gauges()
        return job

    def status(self, job_id: str) -> dict:
        """The job's current document (without the result payload)."""
        with self._cond:
            return self._job(job_id).to_dict(include_result=False)

    def result(self, job_id: str) -> dict:
        """The result payload of a ``done`` job.

        Raises :class:`ServiceError` while the job is still pending and
        when it ended ``failed``/``cancelled`` (the error text is in the
        message — and in :meth:`status`).
        """
        with self._cond:
            job = self._job(job_id)
            if job.state == DONE and job.result is not None:
                return dict(job.result)
            if job.finished:
                raise ServiceError(
                    f"job {job_id} ended {job.state}"
                    + (f": {job.error}" if job.error else "")
                )
            raise ServiceError(f"job {job_id} is {job.state}; no result yet")

    def cancel(self, job_id: str) -> str:
        """Cancel a job; returns its state after the request.

        Queued jobs finalize as ``cancelled`` immediately.  Running jobs
        get their cancel flag set and stop at the next chunk boundary.
        Terminal jobs are left untouched (idempotent).
        """
        with self._cond:
            job = self._job(job_id)
            if job.finished:
                return job.state
            if self.scheduler.cancel_queued(job_id):
                self.scheduler.finalize_now(
                    job, None, CANCELLED, "cancelled while queued"
                )
                return job.state
            job.cancel_event.set()
            return job.state

    def list_jobs(self, tenant: Optional[str] = None) -> List[dict]:
        """Job documents in submission order, optionally one tenant's."""
        with self._cond:
            return [
                job.to_dict(include_result=False)
                for job in self.store.jobs()
                if tenant is None or job.tenant == tenant
            ]

    def metrics_page(self) -> str:
        """The Prometheus text page, snapshotted under the lock."""
        with self._cond:
            return self.metrics.snapshot().to_prometheus()

    def record_http_request(self, endpoint: str, status: int) -> None:
        """Count one HTTP request (under the lock — the registry isn't)."""
        with self._cond:
            self.metrics.inc(
                "service_http_requests_total", endpoint=endpoint, status=status
            )

    def overload_state(self) -> dict:
        """The admission gate's view: is the service shedding, and why.

        Shedding starts when the *global* queued-job count reaches
        ``shed_queue_depth`` or the journal backlog reaches
        ``shed_journal_records``, and stops the moment both drop back
        under their bounds — there is no hysteresis, so the service
        drains to acceptance as soon as pressure stops.
        ``retry_after_s`` is a deterministic backlog-proportional hint
        (queued jobs per budgeted worker) for the ``Retry-After`` header.
        """
        with self._cond:
            queued = self.scheduler.queued_count()
            records = self.store.record_count
            reasons = []
            if (
                self.shed_queue_depth is not None
                and queued >= self.shed_queue_depth
            ):
                reasons.append("queue_depth")
            if (
                self.shed_journal_records is not None
                and records >= self.shed_journal_records
            ):
                reasons.append("journal_backlog")
            self.metrics.set_gauge(
                "service_overloaded", 1 if reasons else 0
            )
            return {
                "shedding": bool(reasons),
                "reasons": reasons,
                "queued": queued,
                "journal_records": records,
                "retry_after_s": 1 + queued // self.scheduler.worker_budget,
            }

    def record_shed(self, reason: str) -> None:
        """Count one load-shed 503 (under the lock)."""
        with self._cond:
            self.metrics.inc("service_shed_total", reason=reason)

    def store_usage(self, tenant: str) -> int:
        """Bytes of persisted trace stores currently charged to ``tenant``."""
        with self._cond:
            return sum(
                job.store_bytes
                for job in self.store.jobs()
                if job.tenant == tenant
            )

    def release_store(self, job_id: str) -> dict:
        """Delete a finished job's persisted traces and free its quota.

        Quota accounting sums ``store_bytes`` from the journal, so
        pruning ``stores/`` by hand frees disk but never quota — this is
        the journaled release path: it removes
        ``stores/<tenant>/<job_id>`` and journals ``store_bytes=0``, so
        the freed bytes survive a restart.  Idempotent; refuses while
        the job is still queued or running.  Returns the updated job
        document.
        """
        with self._cond:
            job = self._job(job_id)
            if not job.finished:
                raise ServiceError(
                    f"job {job_id} is {job.state}; cancel it before "
                    "releasing its store"
                )
            store_path = self.store_dir / job.tenant / job.job_id
            if store_path.exists():
                shutil.rmtree(store_path)
            if job.store_bytes:
                self.store.update(job, store_bytes=0)
                self.metrics.set_gauge(
                    "service_store_bytes",
                    self.store_usage_locked(job.tenant),
                    tenant=job.tenant,
                )
            return job.to_dict(include_result=False)

    # -- internals -----------------------------------------------------

    def _job(self, job_id: str) -> CampaignJob:
        job = self.store.get(job_id)
        if job is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        return job

    def _enforce_quotas(
        self, tenant: str, policy: TenantPolicy, store: bool
    ) -> None:
        if policy.max_queued is not None:
            active = sum(
                1
                for job in self.store.jobs()
                if job.tenant == tenant and job.state in (QUEUED, RUNNING)
            )
            if active >= policy.max_queued:
                self.metrics.inc(
                    "service_quota_rejections_total", reason="max_queued"
                )
                raise QuotaExceededError(
                    f"tenant {tenant!r} has {active} active jobs "
                    f"(max_queued={policy.max_queued})"
                )
        if store and policy.store_quota_bytes is not None:
            used = sum(
                job.store_bytes
                for job in self.store.jobs()
                if job.tenant == tenant
            )
            if used >= policy.store_quota_bytes:
                self.metrics.inc(
                    "service_quota_rejections_total", reason="store_quota"
                )
                raise QuotaExceededError(
                    f"tenant {tenant!r} store use {used} B is at its "
                    f"quota ({policy.store_quota_bytes} B)"
                )

    def _run(self, job: CampaignJob, resume: bool) -> dict:
        """Scheduler runner: executes on a worker thread, no lock held."""
        faults = self.job_faults(job) if self.job_faults is not None else None
        return run_job(
            job,
            checkpoint_dir=self.checkpoint_dir,
            store_dir=self.store_dir,
            resume=resume,
            faults=faults,
        )

    def _on_dispatch(self, job: CampaignJob) -> None:
        """Scheduler callback (under the shared lock): job started."""
        started = now()
        self.store.update(
            job,
            state=RUNNING,
            dispatch_seq=job.dispatch_seq,
            started_at=started,
        )
        queue_s = started - job.submitted_at
        self.metrics.observe(
            "service_job_queue_seconds", queue_s,
            buckets=SERVICE_SECONDS_BUCKETS,
        )
        self._update_gauges()

    def _on_finalize(
        self,
        job: CampaignJob,
        payload: Optional[dict],
        state: str,
        error: Optional[str],
    ) -> None:
        """Scheduler callback (under the shared lock): job terminal."""
        finished = now()
        self.store.update(
            job,
            state=state,
            completion_seq=job.completion_seq,
            finished_at=finished,
            error=error,
            result=payload,
            store_bytes=job.store_bytes,
            cached=job.cached,
            resumed=job.resumed,
        )
        self.completion_order.append(job.job_id)
        self.metrics.inc(
            "service_jobs_completed_total", state=state, tenant=job.tenant
        )
        if job.started_at is not None:
            self.metrics.observe(
                "service_job_run_seconds", finished - job.started_at,
                buckets=SERVICE_SECONDS_BUCKETS,
            )
        if state == DONE and payload is not None and not job.cached:
            evicted = self.cache.put(job.cache_key, payload)
            if evicted:
                self.metrics.inc("service_cache_evictions_total", evicted)
        if job.store_bytes:
            self.metrics.set_gauge(
                "service_store_bytes",
                self.store_usage_locked(job.tenant),
                tenant=job.tenant,
            )
        self._update_gauges()

    def store_usage_locked(self, tenant: str) -> int:
        return sum(
            job.store_bytes
            for job in self.store.jobs()
            if job.tenant == tenant
        )

    def _update_gauges(self) -> None:
        states: Dict[str, int] = {}
        for job in self.store.jobs():
            states[job.state] = states.get(job.state, 0) + 1
        self.metrics.set_gauge("service_queue_depth", states.get(QUEUED, 0))
        self.metrics.set_gauge("service_jobs_running", states.get(RUNNING, 0))
        self.metrics.set_gauge(
            "service_journal_records", self.store.record_count
        )

    def _declare_metrics(self) -> None:
        """Pre-declare service histograms so /metrics shows them at boot.

        An idle daemon then exports empty ``service_job_*_seconds``
        series (rendered as ``p50=–`` by ``repro.obs.render``) instead
        of omitting them until the first job runs.
        """
        self.metrics.ensure_histogram(
            "service_job_queue_seconds", buckets=SERVICE_SECONDS_BUCKETS
        )
        self.metrics.ensure_histogram(
            "service_job_run_seconds", buckets=SERVICE_SECONDS_BUCKETS
        )

    # -- crash recovery ------------------------------------------------

    def _recover(self) -> None:
        """Rebuild volatile state from the journal after a restart.

        The cache is re-warmed by replaying completed jobs' payload
        *puts* in their original completion order (cache hits didn't
        put, so they are skipped) — FIFO eviction makes the rebuilt
        cache identical to the pre-crash one.  Jobs the journal left
        ``queued`` or ``running`` are re-queued; durable ones that were
        running resume from their campaign checkpoint bit-identically.
        """
        self.scheduler.restore_sequences(
            self.store.max_seq("dispatch_seq") + 1,
            self.store.max_seq("completion_seq") + 1,
        )
        done = sorted(
            (
                job
                for job in self.store.jobs()
                if job.state == DONE
                and job.result is not None
                and not job.cached
            ),
            key=lambda job: (
                job.completion_seq if job.completion_seq is not None else -1
            ),
        )
        for job in done:
            self.cache.put(job.cache_key, job.result)
        for job, action in interrupted_jobs(self.store):
            self.store.update(
                job, state=QUEUED, requeues=job.requeues + 1,
                resumed=action == "resume",
            )
            self.metrics.inc("service_jobs_requeued_total", action=action)
            self.scheduler.submit(job, resume=action == "resume")
        if self.store.torn_line is not None:
            self.metrics.inc("service_journal_torn_lines_total")
        self._update_gauges()
