"""Spec-hash result cache: identical campaigns answer without recompute.

Campaign results are a pure function of ``(spec, master seed, chunk
layout)`` — the engine's reproducibility contract — so a completed job's
result payload can be served to any later job with the same
:func:`cache_key` without touching the engine.  The key hashes the
canonical :meth:`~repro.pipeline.CampaignSpec.spec_digest` together with
every run parameter that shapes the result (trace budget, chunk size,
and the *effective*, tenant-namespaced seed).  Because
:func:`~repro.service.tenancy.tenant_seed` differs per tenant, tenants
never share entries: a cache hit can never reveal that another tenant
ran the same campaign.

Eviction is strict FIFO (insertion order, no refresh on read) so the
cache contents are a deterministic function of the sequence of ``put``
calls — which is exactly what lets
:meth:`~repro.service.service.CampaignService` rebuild a warm cache by
replaying its job journal after a restart.
"""

from __future__ import annotations

import copy
import hashlib
import json
from collections import OrderedDict
from typing import Optional

from repro.errors import ConfigurationError
from repro.pipeline.spec import CampaignSpec

#: Version tag of the key derivation; bump to invalidate every entry.
CACHE_KEY_SCHEMA = "rftc-service-cache/1"


def cache_key(
    spec: CampaignSpec, n_traces: int, chunk_size: int, seed: int
) -> str:
    """The result-cache key for one fully-specified campaign run.

    ``seed`` is the effective master seed (already tenant-namespaced).
    The campaign mode (CPA vs TVLA) needs no separate field — it is
    implied by ``fixed_plaintext`` inside the spec digest.
    """
    material = json.dumps(
        {
            "schema": CACHE_KEY_SCHEMA,
            "spec_digest": spec.spec_digest(),
            "n_traces": int(n_traces),
            "chunk_size": int(chunk_size),
            "seed": int(seed),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(material.encode("ascii")).hexdigest()


class ResultCache:
    """Bounded FIFO cache of result payloads keyed by :func:`cache_key`.

    Not internally locked: the owning service mutates it only under its
    own condition lock.  ``get`` returns a deep copy so callers can
    attach the payload to a job record without aliasing cached state.
    """

    def __init__(self, max_entries: int = 1024):
        if max_entries < 1:
            raise ConfigurationError("cache max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: "OrderedDict[str, dict]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str) -> Optional[dict]:
        """The cached payload for ``key`` (a private copy), or ``None``."""
        entry = self._entries.get(key)
        return copy.deepcopy(entry) if entry is not None else None

    def put(self, key: str, payload: dict) -> int:
        """Insert (or overwrite) an entry; returns how many were evicted.

        Overwrites keep the original insertion position — a re-run of an
        identical spec produces an identical payload, so position is the
        only thing at stake, and keeping it preserves FIFO determinism.
        """
        self._entries[key] = copy.deepcopy(payload)
        evicted = 0
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            evicted += 1
        return evicted
