"""Deterministic fair-share scheduler over one shared worker budget.

Many queued campaigns, few workers: the scheduler decides *which* job
runs next.  Its invariant — the one the determinism tests pin down — is
that the dispatch sequence and the completion order are a pure function
of the submitted job set and the tenant policies, **never** of the
worker budget or thread timing.  Three mechanisms make that true:

* **Charging at dispatch.**  A tenant is charged a job's work units
  (its trace budget, divided by the tenant's fair share) the moment the
  job is *dispatched*, not when it finishes.  Charges therefore depend
  only on the dispatch history, so each pick depends only on prior
  picks — thread completion timing never reaches the decision.
* **Logical aging.**  A queued job's priority grows with the number of
  dispatches that have happened since it was enqueued (one step per
  ``aging_dispatches``), so low-priority work cannot starve under a
  stream of high-priority submissions.  The clock is the dispatch
  counter — never wall time.
* **Finalization in dispatch order.**  Jobs may *finish* out of order
  (a short job dispatched later completes first), but their results are
  buffered and the finalize callback runs strictly in dispatch order —
  mirroring how the engine folds chunks in index order — so completion
  sequence numbers are deterministic for any worker budget.  Worker
  slots are released at raw completion, so this buffering never costs
  throughput.

The scheduler is pure mechanism: it owns no journal, no metrics, and no
cache.  The service facade supplies ``on_dispatch``/``on_finalize``
callbacks (invoked under the shared lock) and does the bookkeeping.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, JobCancelledError
from repro.service.jobs import CampaignJob
from repro.service.tenancy import TenantPolicy

#: What a finalize callback receives: the job, the result payload (or
#: ``None``), the terminal state name, and the error text (or ``None``).
FinalizeCallback = Callable[[CampaignJob, Optional[dict], str, Optional[str]], None]
DispatchCallback = Callable[[CampaignJob], None]
RunnerFn = Callable[[CampaignJob, bool], dict]


class Scheduler:
    """Multiplex campaigns over ``worker_budget`` threads, fairly.

    Parameters
    ----------
    runner:
        ``runner(job, resume) -> payload`` executed on a worker thread.
        :class:`JobCancelledError` finalizes the job as ``cancelled``;
        any other exception finalizes it as ``failed``.
    worker_budget:
        Concurrent campaign executions.
    cond:
        The shared :class:`threading.Condition` guarding all scheduler
        *and* service state — one lock, so the callbacks can touch
        service structures without ordering hazards.
    policies:
        Per-tenant :class:`TenantPolicy`; unknown tenants get defaults.
    aging_dispatches:
        Queued jobs gain one priority step per this many dispatches.
    """

    def __init__(
        self,
        runner: RunnerFn,
        worker_budget: int = 2,
        cond: Optional[threading.Condition] = None,
        policies: Optional[Dict[str, TenantPolicy]] = None,
        aging_dispatches: int = 4,
        on_dispatch: Optional[DispatchCallback] = None,
        on_finalize: Optional[FinalizeCallback] = None,
    ):
        if worker_budget < 1:
            raise ConfigurationError("worker_budget must be >= 1")
        if aging_dispatches < 1:
            raise ConfigurationError("aging_dispatches must be >= 1")
        self.runner = runner
        self.worker_budget = int(worker_budget)
        self.cond = cond if cond is not None else threading.Condition()
        self.policies = dict(policies or {})
        self.aging_dispatches = int(aging_dispatches)
        self.on_dispatch = on_dispatch
        self.on_finalize = on_finalize

        #: tenant -> queued (job, resume) entries, in enqueue order.
        self._ready: Dict[str, List[Tuple[CampaignJob, bool]]] = {}
        #: job_id -> dispatch counter value when the job was enqueued.
        self._enqueued_at: Dict[str, int] = {}
        #: tenant -> work units charged at dispatch (traces / share).
        self._charges: Dict[str, float] = {}
        self._dispatch_seq = 0
        self._completion_seq = 0
        #: dispatch_seq -> (job, payload, state, error) awaiting in-order
        #: finalization.
        self._pending_finalize: Dict[
            int, Tuple[CampaignJob, Optional[dict], str, Optional[str]]
        ] = {}
        self._next_finalize = 0
        self._in_flight = 0
        self._stop = False
        self._executor: Optional[ThreadPoolExecutor] = None
        self._dispatcher: Optional[threading.Thread] = None

    # -- policy views --------------------------------------------------

    def policy(self, tenant: str) -> TenantPolicy:
        return self.policies.get(tenant, TenantPolicy())

    def charged(self, tenant: str) -> float:
        """Work units charged to ``tenant`` so far (dispatch-time)."""
        with self.cond:
            return self._charges.get(tenant, 0.0)

    def queued_count(self, tenant: Optional[str] = None) -> int:
        with self.cond:
            if tenant is not None:
                return len(self._ready.get(tenant, ()))
            return sum(len(entries) for entries in self._ready.values())

    # -- lifecycle -----------------------------------------------------

    def start(self) -> None:
        if self._dispatcher is not None:
            raise ConfigurationError("scheduler already started")
        self._executor = ThreadPoolExecutor(
            max_workers=self.worker_budget,
            thread_name_prefix="campaign-worker",
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="campaign-dispatcher", daemon=True
        )
        self._dispatcher.start()

    def submit(self, job: CampaignJob, resume: bool = False) -> None:
        """Enqueue ``job``; the dispatcher picks it up when fair."""
        with self.cond:
            if self._stop:
                raise ConfigurationError("scheduler is shut down")
            self._ready.setdefault(job.tenant, []).append((job, resume))
            self._enqueued_at[job.job_id] = self._dispatch_seq
            self.cond.notify_all()

    def cancel_queued(self, job_id: str) -> bool:
        """Drop ``job_id`` from the ready queue; False if not queued."""
        with self.cond:
            for tenant, entries in self._ready.items():
                for i, (job, _resume) in enumerate(entries):
                    if job.job_id == job_id:
                        del entries[i]
                        self._enqueued_at.pop(job_id, None)
                        return True
        return False

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Block until no work is queued, running, or pending finalize."""
        with self.cond:
            return self.cond.wait_for(
                lambda: not self._has_work(), timeout=timeout
            )

    def shutdown(self, wait: bool = True) -> None:
        """Stop dispatching; optionally wait for in-flight jobs."""
        with self.cond:
            self._stop = True
            self.cond.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=10.0)
        if self._executor is not None:
            self._executor.shutdown(wait=wait)

    def _has_work(self) -> bool:
        return (
            any(self._ready.values())
            or self._in_flight > 0
            or bool(self._pending_finalize)
        )

    # -- the pick ------------------------------------------------------

    def _pick_locked(self) -> Optional[Tuple[CampaignJob, bool]]:
        """Choose the next (job, resume) to dispatch; None if queue empty.

        Tenant first: the one with the least charged work — charges are
        already share-normalized at dispatch time — with the name as the
        stable tie-break.  Then within the tenant: the
        highest aged priority, earliest submission on ties.  Both keys
        read only dispatch-history state, so the pick sequence is
        deterministic for any worker budget.
        """
        candidates = sorted(
            (tenant for tenant, entries in self._ready.items() if entries),
            key=lambda t: (self._charges.get(t, 0.0), t),
        )
        if not candidates:
            return None
        tenant = candidates[0]
        entries = self._ready[tenant]

        def effective(entry: Tuple[CampaignJob, bool]) -> Tuple[int, int]:
            job = entry[0]
            age = self._dispatch_seq - self._enqueued_at.get(
                job.job_id, self._dispatch_seq
            )
            return (
                -(job.priority + age // self.aging_dispatches),
                job.submit_seq,
            )

        best = min(range(len(entries)), key=lambda i: effective(entries[i]))
        return entries.pop(best)

    def restore_sequences(self, dispatch_seq: int, completion_seq: int) -> None:
        """Continue sequence numbering after a journal replay.

        Must be called before :meth:`start`; the finalize cursor tracks
        the dispatch counter because a freshly-restored scheduler has
        nothing in flight.
        """
        with self.cond:
            if self._dispatcher is not None or self._in_flight:
                raise ConfigurationError(
                    "cannot restore sequences on a running scheduler"
                )
            self._dispatch_seq = int(dispatch_seq)
            self._next_finalize = int(dispatch_seq)
            self._completion_seq = int(completion_seq)

    def finalize_now(
        self,
        job: CampaignJob,
        payload: Optional[dict],
        state: str,
        error: Optional[str] = None,
    ) -> None:
        """Finalize a job that never dispatches (e.g. a cache hit).

        Assigns the next completion sequence number synchronously, so a
        cache-served job is ordered by *when it was submitted* relative
        to other finalizations — it does not wait behind running work.
        """
        with self.cond:
            job.completion_seq = self._completion_seq
            self._completion_seq += 1
            if self.on_finalize is not None:
                self.on_finalize(job, payload, state, error)
            self.cond.notify_all()

    # -- dispatch + finalize -------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self.cond:
                self.cond.wait_for(
                    lambda: self._stop
                    or (
                        any(self._ready.values())
                        and self._in_flight < self.worker_budget
                    )
                )
                if self._stop:
                    return
                picked = self._pick_locked()
                if picked is None:
                    continue
                job, resume = picked
                seq = self._dispatch_seq
                self._dispatch_seq += 1
                self._enqueued_at.pop(job.job_id, None)
                self._charges[job.tenant] = (
                    self._charges.get(job.tenant, 0.0)
                    + job.n_traces / self.policy(job.tenant).share
                )
                self._in_flight += 1
                job.dispatch_seq = seq
                if self.on_dispatch is not None:
                    self.on_dispatch(job)
                executor = self._executor
            try:
                executor.submit(self._run_one, job, resume, seq)
            except RuntimeError as exc:
                # A concurrent shutdown() finished executor.shutdown()
                # between our _stop check and this submit.  Finalize the
                # already-dispatched job as cancelled instead of leaving
                # it journaled RUNNING forever (and keep this thread
                # alive to drain anything else in flight).
                self._complete(
                    seq, job, None, "cancelled",
                    f"scheduler shut down before the job started: {exc}",
                )

    def _run_one(self, job: CampaignJob, resume: bool, seq: int) -> None:
        payload: Optional[dict] = None
        error: Optional[str] = None
        try:
            payload = self.runner(job, resume)
            state = "done"
        except JobCancelledError as exc:
            state, error = "cancelled", str(exc)
        except Exception as exc:  # noqa: BLE001 - job failure is data
            state, error = "failed", f"{type(exc).__name__}: {exc}"
        self._complete(seq, job, payload, state, error)

    def _complete(
        self,
        seq: int,
        job: CampaignJob,
        payload: Optional[dict],
        state: str,
        error: Optional[str],
    ) -> None:
        with self.cond:
            # Free the worker slot immediately; finalize strictly in
            # dispatch order (buffered, like the engine's chunk folding)
            # so completion sequence numbers are timing-independent.
            self._in_flight -= 1
            self._pending_finalize[seq] = (job, payload, state, error)
            while self._next_finalize in self._pending_finalize:
                fin_job, fin_payload, fin_state, fin_error = (
                    self._pending_finalize.pop(self._next_finalize)
                )
                fin_job.completion_seq = self._completion_seq
                self._completion_seq += 1
                self._next_finalize += 1
                if self.on_finalize is not None:
                    self.on_finalize(fin_job, fin_payload, fin_state, fin_error)
            self.cond.notify_all()
