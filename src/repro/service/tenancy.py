"""Multi-tenant policy: fair-share weights, quotas, seed namespaces.

Every job belongs to a *tenant* — a named principal sharing the service's
worker budget.  A :class:`TenantPolicy` carries the three levers the
scheduler and admission control understand:

* ``share`` — fair-share weight.  The scheduler keeps each tenant's
  *charged work units per share* balanced, so a tenant with ``share=2``
  drains twice as fast as one with ``share=1`` under contention.
* ``max_queued`` — admission cap on jobs simultaneously queued or
  running; submissions beyond it are rejected, not silently dropped.
* ``store_quota_bytes`` — cap on bytes of persisted trace stores; once a
  tenant's stores reach it, further ``store=True`` submissions are
  rejected until store data is released through
  :meth:`~repro.service.service.CampaignService.release_store` (HTTP
  ``DELETE /v1/jobs/<id>/store``), which removes the persisted traces
  *and* journals the freed bytes.  Usage is accounted from the journal,
  not the filesystem, so pruning ``stores/`` by hand frees disk but not
  quota.

Seed namespaces
---------------
Two tenants submitting the *same* spec and seed must not observe each
other's randomness (or share cache entries, which would leak that
another tenant ran the identical campaign).  :func:`tenant_seed`
therefore maps ``(tenant, seed)`` to the effective campaign master seed
by hashing both behind a versioned tag.  The mapping is deterministic,
so a tenant's results stay reproducible — running
:class:`~repro.pipeline.StreamingCampaign` directly with
``tenant_seed(tenant, seed)`` gives bit-identical results to the
service (asserted by ``tests/service/test_server.py``).
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError

#: Tenant names become path components of the service data directory, so
#: the shape is strict: alphanumeric start, then ``[A-Za-z0-9_.-]``.
TENANT_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: Version tag of the seed-namespace mapping; bump to re-key every tenant.
SEED_NAMESPACE_SCHEMA = "rftc-tenant-seed/1"

#: Tenant used when a request names none.
DEFAULT_TENANT = "default"


def validate_tenant(name: str) -> str:
    """Return ``name`` if it is a legal tenant name, else raise."""
    if not isinstance(name, str) or not TENANT_NAME_RE.match(name):
        raise ConfigurationError(
            f"invalid tenant name {name!r}: need 1-64 chars of "
            "[A-Za-z0-9_.-] starting alphanumeric"
        )
    return name


def tenant_seed(tenant: str, seed: int) -> int:
    """The effective campaign master seed for ``(tenant, seed)``.

    A 64-bit integer derived by SHA-256 from the versioned namespace
    tag, the tenant name, and the requested seed — deterministic,
    collision-resistant across tenants, and valid input for
    ``numpy.random.SeedSequence``.
    """
    validate_tenant(tenant)
    material = f"{SEED_NAMESPACE_SCHEMA}:{tenant}:{int(seed)}".encode("utf-8")
    return int.from_bytes(hashlib.sha256(material).digest()[:8], "big")


@dataclass(frozen=True)
class TenantPolicy:
    """Scheduling weight and admission quotas for one tenant."""

    share: float = 1.0
    max_queued: Optional[int] = None
    store_quota_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.share > 0:
            raise ConfigurationError("tenant share must be > 0")
        if self.max_queued is not None and self.max_queued < 1:
            raise ConfigurationError("max_queued must be >= 1 (or None)")
        if self.store_quota_bytes is not None and self.store_quota_bytes < 0:
            raise ConfigurationError("store_quota_bytes must be >= 0 (or None)")

    @classmethod
    def parse(cls, text: str) -> Tuple[str, "TenantPolicy"]:
        """Parse a CLI tenant spec: ``name:share=2,max_queued=8,store_quota_mb=64``.

        The policy part is optional (``"alice"`` means the defaults) and
        each ``key=value`` pair may appear at most once.
        """
        name, _, rest = text.partition(":")
        validate_tenant(name)
        fields: dict = {}
        if rest:
            for pair in rest.split(","):
                key, sep, value = pair.partition("=")
                key = key.strip()
                if not sep:
                    raise ConfigurationError(
                        f"bad tenant policy {pair!r}: expected key=value"
                    )
                try:
                    if key == "share" and "share" not in fields:
                        fields["share"] = float(value)
                    elif key == "max_queued" and "max_queued" not in fields:
                        fields["max_queued"] = int(value)
                    elif (
                        key == "store_quota_mb"
                        and "store_quota_bytes" not in fields
                    ):
                        fields["store_quota_bytes"] = int(
                            float(value) * 1024 * 1024
                        )
                    elif key in ("share", "max_queued", "store_quota_mb"):
                        raise ConfigurationError(
                            f"tenant policy key {key!r} given twice"
                        )
                    else:
                        raise ConfigurationError(
                            f"unknown tenant policy key {key!r} (expected "
                            "share, max_queued, or store_quota_mb)"
                        )
                except ValueError as exc:
                    raise ConfigurationError(
                        f"bad tenant policy value {pair!r}: {exc}"
                    ) from exc
        return name, cls(**fields)
