"""Campaign service: multi-tenant async jobs over the streaming engine.

``repro.service`` turns the library's one-shot
:class:`~repro.pipeline.StreamingCampaign` into a long-running,
multi-tenant daemon: tenants submit campaign *jobs* over a small HTTP
API (or in-process via :class:`CampaignService`), a deterministic
fair-share :class:`~repro.service.scheduler.Scheduler` multiplexes them
over one worker budget, identical submissions are answered from a
spec-hash :class:`~repro.service.cache.ResultCache` without recompute,
and every transition is journaled so a restarted daemon resumes exactly
where it died.  Stdlib only — asyncio sockets, threads, JSON.

Layers (see ``docs/service.md``):

* :mod:`repro.service.tenancy` — tenant policies, quotas, seed namespaces
* :mod:`repro.service.jobs` — :class:`CampaignJob` + the JSONL journal
* :mod:`repro.service.cache` — spec-digest result cache
* :mod:`repro.service.scheduler` — deterministic fair-share dispatch
* :mod:`repro.service.execution` — running one job bit-identically
* :mod:`repro.service.service` — the :class:`CampaignService` facade
* :mod:`repro.service.server` / :mod:`repro.service.client` — HTTP layer
"""

from repro.service.cache import ResultCache, cache_key
from repro.service.jobs import CampaignJob, JobStore
from repro.service.scheduler import Scheduler
from repro.service.service import CampaignService
from repro.service.tenancy import (
    DEFAULT_TENANT,
    TenantPolicy,
    tenant_seed,
    validate_tenant,
)

__all__ = [
    "CampaignJob",
    "CampaignService",
    "DEFAULT_TENANT",
    "JobStore",
    "ResultCache",
    "Scheduler",
    "TenantPolicy",
    "cache_key",
    "tenant_seed",
    "validate_tenant",
]
