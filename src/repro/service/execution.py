"""Running one job through the streaming engine, deterministically.

This module is the bridge between a :class:`~repro.service.jobs.CampaignJob`
and :class:`~repro.pipeline.StreamingCampaign`.  Two properties matter:

* **Bit-identity.**  ``run_job`` configures the engine exactly as a direct
  run would — same spec, same effective seed, same chunk size — so the
  service's result payload equals ``serialize_report`` of a caller's own
  ``StreamingCampaign.run`` with the tenant-namespaced seed (asserted by
  ``tests/service/test_server.py``).
* **Determinism of the payload.**  The serialized result carries *no
  timings and no worker/host facts*: it is a pure function of ``(spec,
  seed, n_traces, chunk_size)``, which is what makes it safe to serve
  from the :class:`~repro.service.cache.ResultCache` and to compare
  across runs.  Wall-clock accounting lives on the job record instead.

Cancellation is cooperative: the engine's per-chunk progress callback
checks the job's cancel event and raises :class:`JobCancelledError`,
which the scheduler finalizes as ``cancelled`` rather than ``failed``.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import List, Optional

from repro.errors import JobCancelledError, StorageExhaustedError
from repro.pipeline import (
    CompletionTimeConsumer,
    CpaStreamConsumer,
    PipelineReport,
    StreamingCampaign,
    TraceConsumer,
    TvlaStreamConsumer,
)
from repro.pipeline.spec import CampaignSpec
from repro.service.jobs import CampaignJob

#: Version tag of the result payload layout.
RESULT_SCHEMA = "rftc-service-result/1"


def job_consumers(spec: CampaignSpec) -> List[TraceConsumer]:
    """The analysis stack the service runs for ``spec``.

    Every job gets completion-time statistics (the paper's Fig. 3
    metric); fixed-plaintext specs run TVLA over the interleaved rows,
    the rest run streaming CPA on key byte 0.
    """
    consumers: List[TraceConsumer] = [CompletionTimeConsumer()]
    if spec.fixed_plaintext is not None:
        consumers.append(TvlaStreamConsumer())
    else:
        consumers.append(CpaStreamConsumer(0))
    return consumers


def serialize_report(report: PipelineReport) -> dict:
    """The deterministic result payload for one finished campaign.

    Only seed-derived analysis outcomes are included — never timings,
    worker counts, retry counts, or store paths — so the payload is
    cache-safe and bit-comparable across hosts and runs.
    """
    from repro.attacks.models import expand_last_round_key

    spec = report.spec
    payload = {
        "schema": RESULT_SCHEMA,
        "spec_digest": spec.spec_digest(),
        "target": spec.label(),
        "n_traces": report.n_traces,
        "n_chunks": report.n_chunks,
        "chunk_size": report.chunk_size,
        "seed": report.seed,
        "mode": "tvla" if spec.fixed_plaintext is not None else "cpa",
    }
    completion = report.results["completion"]
    payload["completion"] = {
        "n_encryptions": completion.n_encryptions,
        "distinct_times": completion.distinct_times,
        "min_ns": completion.min_ns,
        "max_ns": completion.max_ns,
        "max_identical": completion.max_identical,
    }
    if payload["mode"] == "cpa":
        cpa = report.results["cpa[0]"]
        true_byte = int(expand_last_round_key(spec.key)[cpa.byte_index])
        payload["cpa"] = {
            "byte_index": cpa.byte_index,
            "best_guess": int(cpa.best_guess),
            "true_byte_rank": cpa.rank_of(true_byte),
            "peak_corr": [float(c) for c in cpa.peak_corr],
        }
    else:
        tvla = report.results["tvla"]
        payload["tvla"] = {
            "max_abs_t": float(tvla.max_abs_t),
            "n_fixed": int(tvla.n_fixed),
            "n_random": int(tvla.n_random),
        }
    return payload


def _tree_bytes(root: Path) -> int:
    return sum(p.stat().st_size for p in root.rglob("*") if p.is_file())


def run_job(
    job: CampaignJob,
    checkpoint_dir: Optional[Path] = None,
    store_dir: Optional[Path] = None,
    resume: bool = False,
    faults=None,
) -> dict:
    """Execute ``job`` to completion and return its result payload.

    Runs in a scheduler worker thread.  ``durable`` jobs checkpoint to
    ``checkpoint_dir / <job_id>.ckpt`` after every chunk; with
    ``resume=True`` and an existing checkpoint, the campaign continues
    from it (bit-identically, per the engine's resume contract) instead
    of restarting.  ``store`` jobs persist traces under
    ``store_dir / <tenant> / <job_id>`` and record the byte total on the
    job for quota accounting.

    ``faults`` (an optional :class:`~repro.testing.faults.FaultPlan`) is
    handed to the engine — the chaos harness injects system faults into
    service jobs through it.  A
    :class:`~repro.errors.StorageExhaustedError` (disk full mid-append)
    removes the job's partial store tree before propagating, so a
    ``FAILED`` job neither holds disk nor charges quota.

    Raises :class:`JobCancelledError` as soon as the job's cancel event
    is observed at a chunk boundary.
    """
    spec = job.spec()
    consumers = job_consumers(spec)

    checkpoint_path: Optional[Path] = None
    if job.durable and checkpoint_dir is not None:
        checkpoint_path = Path(checkpoint_dir) / f"{job.job_id}.ckpt"

    store_path: Optional[Path] = None
    if job.store and store_dir is not None:
        store_path = Path(store_dir) / job.tenant / job.job_id
        store_path.parent.mkdir(parents=True, exist_ok=True)

    def progress(update) -> None:
        if job.cancel_event.is_set():
            raise JobCancelledError(f"job {job.job_id} cancelled")

    try:
        if resume and checkpoint_path is not None and checkpoint_path.is_file():
            report = StreamingCampaign.resume(
                store=str(store_path) if store_path is not None else None,
                checkpoint=checkpoint_path,
                consumers=consumers,
                workers=1,
                progress=progress,
                faults=faults,
            )
        else:
            engine = StreamingCampaign(
                spec,
                chunk_size=job.chunk_size,
                workers=1,
                seed=job.seed,
                faults=faults,
            )
            report = engine.run(
                job.n_traces,
                consumers=consumers,
                store=str(store_path) if store_path is not None else None,
                progress=progress,
                checkpoint=checkpoint_path,
            )
    except StorageExhaustedError:
        # The store already cleaned up its half-written chunk; drop the
        # whole partial tree so the FAILED job releases disk and quota.
        if store_path is not None and store_path.exists():
            shutil.rmtree(store_path, ignore_errors=True)
        job.store_bytes = 0
        raise

    if store_path is not None and store_path.exists():
        job.store_bytes = _tree_bytes(store_path)
    if checkpoint_path is not None and checkpoint_path.is_file():
        # The campaign finished; the resume point has served its purpose.
        checkpoint_path.unlink()
    return serialize_report(report)
