"""Stdlib HTTP client for the campaign service daemon.

Used by the test suite, the load-test harness
(``benchmarks/bench_service_load.py``) and any script that wants to
drive a ``repro-rftc serve`` daemon without hand-rolling requests.  One
``http.client`` connection per request, mirroring the server's
``Connection: close`` discipline.

Errors map back to the service's exception family: 404 raises
:class:`~repro.errors.UnknownJobError`, 429 raises
:class:`~repro.errors.QuotaExceededError`, anything else non-2xx raises
:class:`~repro.errors.ServiceError` with the server's message.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import List, Optional

from repro.errors import QuotaExceededError, ServiceError, UnknownJobError
from repro.pipeline.spec import CampaignSpec, spec_to_dict


class ServiceClient:
    """Talk to one campaign service daemon at ``host:port``.

    ``token`` is the tenant's bearer token for a daemon started with
    per-tenant authentication (``repro-rftc serve --auth``); leave it
    ``None`` against an unauthenticated daemon.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        token: Optional[str] = None,
    ):
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self.token = token

    # -- plumbing ------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
    ) -> "tuple[int, str]":
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = None
            headers = {}
            if self.token is not None:
                headers["Authorization"] = f"Bearer {self.token}"
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            return response.status, response.read().decode("utf-8")
        finally:
            conn.close()

    def _json(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        status, text = self._request(method, path, body)
        if 200 <= status < 300:
            return json.loads(text)
        try:
            message = json.loads(text).get("error", text.strip())
        except json.JSONDecodeError:
            message = text.strip()
        if status == 404:
            raise UnknownJobError(message)
        if status == 429:
            raise QuotaExceededError(message)
        raise ServiceError(f"HTTP {status}: {message}")

    # -- API -----------------------------------------------------------

    def healthy(self) -> bool:
        """Liveness: the daemon's event loop answers ``/healthz``."""
        try:
            status, text = self._request("GET", "/healthz")
        except OSError:
            return False
        return status == 200 and text.strip() == "ok"

    def ready(self) -> bool:
        """Readiness: live *and* not shedding load (``/healthz/ready``)."""
        try:
            status, _text = self._request("GET", "/healthz/ready")
        except OSError:
            return False
        return status == 200

    def submit(
        self,
        spec: CampaignSpec,
        n_traces: int,
        chunk_size: int = 1000,
        seed: int = 0,
        tenant: Optional[str] = None,
        priority: int = 0,
        durable: bool = False,
        store: bool = False,
    ) -> dict:
        """Submit a campaign; returns the job document (see ``job_id``).

        ``tenant=None`` lets the server pick: the bearer token's tenant
        on an authenticated daemon, ``"default"`` otherwise.
        """
        body = {
            "spec": spec_to_dict(spec),
            "n_traces": int(n_traces),
            "chunk_size": int(chunk_size),
            "seed": int(seed),
            "priority": int(priority),
            "durable": bool(durable),
            "store": bool(store),
        }
        if tenant is not None:
            body["tenant"] = tenant
        return self._json("POST", "/v1/jobs", body)

    def status(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._json("GET", f"/v1/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/v1/jobs/{job_id}/cancel")

    def release_store(self, job_id: str) -> dict:
        """Delete a finished job's persisted traces, freeing quota bytes."""
        return self._json("DELETE", f"/v1/jobs/{job_id}/store")

    def list_jobs(self, tenant: Optional[str] = None) -> List[dict]:
        path = "/v1/jobs" + (f"?tenant={tenant}" if tenant else "")
        return self._json("GET", path)["jobs"]

    def metrics_text(self) -> str:
        status, text = self._request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"HTTP {status} from /metrics")
        return text

    def counter_value(self, name: str) -> float:
        """Sum a counter's series from the Prometheus page (labels folded)."""
        total, seen = 0.0, False
        for line in self.metrics_text().splitlines():
            if line.startswith("#"):
                continue
            metric, _, value = line.rpartition(" ")
            if metric == name or metric.startswith(name + "{"):
                total += float(value)
                seen = True
        if not seen:
            raise ServiceError(f"no counter {name!r} on /metrics")
        return total

    def wait(
        self,
        job_id: str,
        timeout: float = 60.0,
        poll_seconds: float = 0.05,
        max_poll_seconds: float = 1.0,
        jitter_seed: int = 0,
    ) -> dict:
        """Poll until ``job_id`` is terminal; returns the final status doc.

        The poll interval starts at ``poll_seconds`` and backs off
        exponentially (×1.5 per poll, capped at ``max_poll_seconds``)
        with deterministic jitter drawn from ``jitter_seed`` — a fleet
        of waiting clients spreads out instead of polling in lockstep,
        and two runs with the same seed poll on the same schedule.

        A connection refused/reset (the daemon restarting, e.g. under
        the chaos harness's ``stalled-server`` fault) is retried until
        ``timeout`` rather than propagating — only the deadline ends
        the wait.
        """
        deadline = time.monotonic() + timeout
        rng = random.Random(f"wait:{jitter_seed}:{job_id}")
        interval = float(poll_seconds)
        while True:
            try:
                doc = self.status(job_id)
            except (UnknownJobError, QuotaExceededError):
                raise
            except (ServiceError, OSError) as exc:
                # ServiceError from a non-2xx during restart recovery
                # (e.g. 503 while the journal replays) is retryable too.
                if time.monotonic() >= deadline:
                    raise ServiceError(
                        f"timed out after {timeout} s waiting for "
                        f"{job_id}: {exc}"
                    ) from exc
            else:
                if doc["state"] in ("done", "failed", "cancelled"):
                    return doc
                if time.monotonic() >= deadline:
                    raise ServiceError(
                        f"timed out after {timeout} s waiting for {job_id} "
                        f"(state {doc['state']})"
                    )
            # 0.5x-1.0x jitter: never sleeps longer than the nominal
            # interval, so the deadline check stays timely.
            time.sleep(interval * (0.5 + 0.5 * rng.random()))
            interval = min(interval * 1.5, float(max_poll_seconds))
