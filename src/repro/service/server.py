"""Minimal asyncio HTTP/1.1 front-end for :class:`CampaignService`.

No web framework and no ``http.server`` — just ``asyncio.start_server``
plus a small, strict HTTP/1.1 reader: request line, headers,
``Content-Length`` body, one request per connection (``Connection:
close``).  That keeps the daemon dependency-free and the attack surface
tiny, at the cost of per-request connections — fine for a control-plane
API whose requests are a few hundred bytes.

Endpoints (JSON in, JSON out unless noted):

========  ============================  =======================================
method    path                          semantics
========  ============================  =======================================
POST      ``/v1/jobs``                  submit a campaign job -> 201 + job doc
GET       ``/v1/jobs``                  list jobs (``?tenant=`` filter)
GET       ``/v1/jobs/<id>``             job status document
GET       ``/v1/jobs/<id>/result``      result payload (409 until ``done``)
POST      ``/v1/jobs/<id>/cancel``      request cancellation -> job status
DELETE    ``/v1/jobs/<id>/store``       delete persisted traces, free quota
GET       ``/metrics``                  Prometheus text page
GET       ``/healthz``                  liveness probe (plain ``ok``)
GET       ``/healthz/live``             alias of ``/healthz``
GET       ``/healthz/ready``            readiness: 200 ``ready``, 503 shedding
========  ============================  =======================================

Trust model: by default the server binds loopback and every client is
mutually trusted — job ids are sequential and all routes see all
tenants' jobs.  Passing ``tokens`` (tenant name -> bearer token, CLI
``--auth``) switches on per-tenant authentication: every route except
``/healthz`` then requires ``Authorization: Bearer <token>``, job-scoped
routes answer 404 for other tenants' jobs (existence is not revealed),
``GET /v1/jobs`` is forced to the caller's tenant, and a submit naming
a different tenant is a 403.  See ``docs/service.md``.

Error mapping: unknown (or other-tenant) job -> 404, quota breach ->
429, missing/bad token -> 401, tenant mismatch -> 403, malformed
request -> 400, anything unexpected -> 500.  Overload protection:
requests not fully read within ``read_timeout_s`` (slow-loris) -> 408
and the connection closed; declared bodies over ``max_body_bytes``
(default 1 MiB) -> 413; and a global admission gate sheds *submissions*
with 503 + ``Retry-After`` while the service reports overload
(:meth:`CampaignService.overload_state`) — reads, cancels, ``/metrics``
and health probes always pass.  The server runs its event
loop on a dedicated thread; handlers call the (internally locked)
service directly — every service call is a short critical section, so
the loop never blocks on campaign execution.
"""

from __future__ import annotations

import asyncio
import hmac
import json
import threading
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import (
    ConfigurationError,
    QuotaExceededError,
    ReproError,
    ServiceError,
    UnknownJobError,
)
from repro.pipeline.spec import spec_from_dict
from repro.service.jobs import TERMINAL_STATES
from repro.service.service import CampaignService
from repro.service.tenancy import DEFAULT_TENANT, validate_tenant

#: Request size guards: header section and (default) JSON body cap.  A
#: submit body is a few hundred bytes; 1 MiB leaves two orders of
#: headroom while bounding what any client can make the server buffer.
MAX_HEADER_BYTES = 64 * 1024
DEFAULT_MAX_BODY_BYTES = 1024 * 1024

#: Default per-connection budget for reading one full request (request
#: line + headers + body).  A slow-loris client that drips bytes slower
#: than this gets a ``408`` and its connection closed.
DEFAULT_READ_TIMEOUT_S = 10.0

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 401: "Unauthorized",
    403: "Forbidden", 404: "Not Found", 405: "Method Not Allowed",
    408: "Request Timeout", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Internal routing signal carrying an HTTP status + message.

    ``headers`` are extra response headers (e.g. ``Retry-After`` on a
    load-shedding ``503``).
    """

    def __init__(
        self, status: int, message: str,
        headers: Optional[Dict[str, str]] = None,
    ):
        super().__init__(message)
        self.status = status
        self.headers = dict(headers or {})


class CampaignServer:
    """Serve one :class:`CampaignService` over HTTP on a background thread.

    ``port=0`` binds an ephemeral port; :meth:`start` returns the actual
    ``(host, port)``.  :meth:`stop` closes the listener and joins the
    loop thread — it does **not** shut the service down (the owner does,
    typically after :meth:`CampaignService.join`).

    ``tokens`` maps tenant name -> bearer token.  When non-empty, every
    route except ``/healthz`` requires a valid ``Authorization: Bearer``
    header and is scoped to the token's tenant; when empty (the
    default), all clients are mutually trusted — only bind beyond
    loopback in a single trust domain.
    """

    def __init__(
        self,
        service: CampaignService,
        host: str = "127.0.0.1",
        port: int = 0,
        tokens: Optional[Dict[str, str]] = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        read_timeout_s: float = DEFAULT_READ_TIMEOUT_S,
    ):
        if max_body_bytes < 1:
            raise ConfigurationError("max_body_bytes must be >= 1")
        if read_timeout_s <= 0:
            raise ConfigurationError("read_timeout_s must be positive")
        self.service = service
        self.host = host
        self.port = int(port)
        self.max_body_bytes = int(max_body_bytes)
        self.read_timeout_s = float(read_timeout_s)
        self._token_tenants: Dict[str, str] = {}
        for tenant, token in (tokens or {}).items():
            validate_tenant(tenant)
            if not isinstance(token, str) or not token:
                raise ConfigurationError(
                    f"tenant {tenant!r} needs a non-empty token string"
                )
            if token in self._token_tenants:
                raise ConfigurationError(
                    f"token for tenant {tenant!r} duplicates another tenant's"
                )
            self._token_tenants[token] = tenant
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._stop_event: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> Tuple[str, int]:
        if self._thread is not None:
            raise ConfigurationError("server already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="campaign-http", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._startup_error is not None:
            raise ServiceError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        if not self._started.is_set():
            raise ServiceError("server failed to start within 10 s")
        return self.host, self.port

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self._startup_error = exc
            self._started.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port
        )
        self.port = server.sockets[0].getsockname()[1]
        self._started.set()
        async with server:
            await self._stop_event.wait()

    # -- HTTP plumbing -------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, body, content_type = 500, b"internal error\n", "text/plain"
        endpoint = "unknown"
        extra_headers: Dict[str, str] = {}
        try:
            try:
                method, target, body_bytes, token = await asyncio.wait_for(
                    self._read_request(reader), timeout=self.read_timeout_s
                )
            except asyncio.TimeoutError as exc:
                raise _HttpError(
                    408,
                    f"request not read within {self.read_timeout_s:g} s",
                ) from exc
            endpoint, status, payload = self._route(
                method, target, body_bytes, token
            )
            if isinstance(payload, str):
                body, content_type = payload.encode("utf-8"), "text/plain; version=0.0.4"
            else:
                body = (json.dumps(payload, indent=1) + "\n").encode("utf-8")
                content_type = "application/json"
        except _HttpError as exc:
            status = exc.status
            extra_headers = exc.headers
            body = (
                json.dumps({"error": str(exc), "status": status}) + "\n"
            ).encode("utf-8")
            content_type = "application/json"
        except (ConnectionError, asyncio.IncompleteReadError):
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 - must answer the socket
            status = 500
            body = (
                json.dumps({"error": f"{type(exc).__name__}: {exc}", "status": 500})
                + "\n"
            ).encode("utf-8")
            content_type = "application/json"
        self.service.record_http_request(endpoint, status)
        reason = _REASONS.get(status, "Unknown")
        extras = "".join(
            f"{name}: {value}\r\n" for name, value in extra_headers.items()
        )
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extras}"
            "Connection: close\r\n"
            "\r\n"
        ).encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, bytes, Optional[str]]:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").rstrip("\r\n").split(" ")
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        content_length = 0
        token: Optional[str] = None
        header_bytes = len(request_line)
        while True:
            line = await reader.readline()
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                raise _HttpError(413, "header section too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError as exc:
                    raise _HttpError(400, "bad Content-Length") from exc
                if content_length < 0:
                    raise _HttpError(400, "bad Content-Length")
            elif name == "authorization":
                scheme, _, credential = value.strip().partition(" ")
                if scheme.lower() == "bearer" and credential.strip():
                    token = credential.strip()
        if content_length > self.max_body_bytes:
            raise _HttpError(
                413,
                f"body of {content_length} bytes exceeds the "
                f"{self.max_body_bytes}-byte limit",
            )
        body = await reader.readexactly(content_length) if content_length else b""
        return method.upper(), target, body, token

    # -- routing -------------------------------------------------------

    def _route(
        self, method: str, target: str, body: bytes, token: Optional[str]
    ) -> Tuple[str, int, object]:
        """Dispatch one request; returns (endpoint label, status, payload)."""
        url = urlsplit(target)
        segments = [s for s in url.path.split("/") if s]
        query = parse_qs(url.query)
        try:
            if segments in (["healthz"], ["healthz", "live"]) and method == "GET":
                # Liveness: the event loop answers, nothing else — it
                # must stay green while the service sheds load.
                return "healthz", 200, "ok\n"
            if segments == ["healthz", "ready"] and method == "GET":
                state = self.service.overload_state()
                if state["shedding"]:
                    raise _HttpError(
                        503,
                        "not ready: shedding load "
                        f"({', '.join(state['reasons'])})",
                        headers={
                            "Retry-After": str(state["retry_after_s"])
                        },
                    )
                return "healthz_ready", 200, "ready\n"
            caller = self._authenticate(token)
            if segments == ["metrics"] and method == "GET":
                return "metrics", 200, self.service.metrics_page()
            if segments == ["v1", "jobs"]:
                if method == "POST":
                    self._admit()
                    return "submit", 201, self._submit(body, caller)
                if method == "GET":
                    tenant = query.get("tenant", [None])[0]
                    if caller is not None:
                        if tenant not in (None, caller):
                            raise _HttpError(
                                403, f"token is not for tenant {tenant!r}"
                            )
                        tenant = caller
                    return "list", 200, {
                        "jobs": self.service.list_jobs(tenant=tenant)
                    }
                raise _HttpError(405, f"{method} not allowed here")
            if len(segments) == 3 and segments[:2] == ["v1", "jobs"]:
                if method != "GET":
                    raise _HttpError(405, f"{method} not allowed here")
                return "status", 200, self._status(segments[2], caller)
            if len(segments) == 4 and segments[:2] == ["v1", "jobs"]:
                job_id, action = segments[2], segments[3]
                if action == "result" and method == "GET":
                    return "result", 200, self._result(job_id, caller)
                if action == "cancel" and method == "POST":
                    self._status(job_id, caller)
                    self.service.cancel(job_id)
                    return "cancel", 200, self.service.status(job_id)
                if action == "store" and method == "DELETE":
                    return "release_store", 200, self._release_store(
                        job_id, caller
                    )
                raise _HttpError(405, f"no {method} {action!r} on a job")
            raise _HttpError(404, f"no route for {url.path}")
        except _HttpError:
            raise
        except UnknownJobError as exc:
            raise _HttpError(404, str(exc)) from exc
        except QuotaExceededError as exc:
            raise _HttpError(429, str(exc)) from exc
        except ReproError as exc:
            raise _HttpError(400, str(exc)) from exc

    def _admit(self) -> None:
        """Global admission gate: shed new work while overloaded.

        Distinct from per-tenant quotas (``429``): shedding protects the
        *service* when total queued work or journal backlog exceeds its
        configured bounds, and tells every client when to come back via
        ``Retry-After``.  Reads, cancels, and health probes always pass.
        """
        state = self.service.overload_state()
        if state["shedding"]:
            reason = state["reasons"][0]
            self.service.record_shed(reason)
            raise _HttpError(
                503,
                f"service overloaded ({', '.join(state['reasons'])}): "
                f"{state['queued']} jobs queued, "
                f"{state['journal_records']} journal records; retry in "
                f"{state['retry_after_s']} s",
                headers={"Retry-After": str(state["retry_after_s"])},
            )

    def _authenticate(self, token: Optional[str]) -> Optional[str]:
        """The caller's tenant, or None when auth is not configured."""
        if not self._token_tenants:
            return None
        if token is None:
            raise _HttpError(401, "missing bearer token")
        caller = None
        for known, tenant in self._token_tenants.items():
            # Constant-time compare of every candidate, so response
            # timing does not leak how much of a token matched.
            if hmac.compare_digest(known.encode(), token.encode()):
                caller = tenant
        if caller is None:
            raise _HttpError(401, "invalid bearer token")
        return caller

    def _status(self, job_id: str, caller: Optional[str]) -> dict:
        """Status document, scoped: other tenants' jobs look unknown."""
        status = self.service.status(job_id)
        if caller is not None and status["tenant"] != caller:
            raise _HttpError(404, f"unknown job {job_id!r}")
        return status

    def _submit(self, body: bytes, caller: Optional[str]) -> dict:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, f"body is not JSON: {exc}") from exc
        if not isinstance(doc, dict) or "spec" not in doc:
            raise _HttpError(400, "submit body needs a 'spec' object")
        tenant = str(doc.get("tenant", caller or DEFAULT_TENANT))
        if caller is not None and tenant != caller:
            raise _HttpError(403, f"token is not for tenant {tenant!r}")
        try:
            spec = spec_from_dict(doc["spec"])
            job = self.service.submit(
                spec,
                n_traces=int(doc.get("n_traces", 1000)),
                chunk_size=int(doc.get("chunk_size", 1000)),
                seed=int(doc.get("seed", 0)),
                tenant=tenant,
                priority=int(doc.get("priority", 0)),
                durable=bool(doc.get("durable", False)),
                store=bool(doc.get("store", False)),
            )
        except (TypeError, ValueError) as exc:
            raise _HttpError(400, f"bad submit field: {exc}") from exc
        return job.to_dict(include_result=False)

    def _result(self, job_id: str, caller: Optional[str]) -> dict:
        status = self._status(job_id, caller)
        if status["state"] == "done":
            return self.service.result(job_id)
        if status["state"] in ("failed", "cancelled"):
            raise _HttpError(
                409,
                f"job {job_id} ended {status['state']}"
                + (f": {status['error']}" if status.get("error") else ""),
            )
        raise _HttpError(409, f"job {job_id} is {status['state']}; no result yet")

    def _release_store(self, job_id: str, caller: Optional[str]) -> dict:
        status = self._status(job_id, caller)
        if status["state"] not in TERMINAL_STATES:
            raise _HttpError(
                409,
                f"job {job_id} is {status['state']}; cancel it before "
                "releasing its store",
            )
        return self.service.release_store(job_id)
