"""Lattice-alignment attack: realign traces by completion-time cell.

RFTC hides the last AES round by randomizing every round's clock period,
so the round-10 register transition lands at a different sample in every
trace and generic CPA integrates over misalignment noise.  But the
countermeasure's completion-time structure is *public* combinatorics
(Sec. 4): with M output clocks and P configurations each encryption ends
on one of P x C(R + M - 1, R) completion times — a finite lattice
(RFTC(3, 1024): 1024 x 66 = 67,584 points, ``repro.rftc.completion``).
An attacker who measures each trace's completion time (trivially visible
as the end of switching activity) can therefore skip generic elastic
alignment (DTW) entirely: quantize the completion time onto the lattice,
bucket traces into lattice cells, and shift every trace in a cell by the
same known offset so all last rounds land on one reference sample.  CPA
on the realigned matrix then sees the last-round leakage coherently
again.

The shift is a pure function of ``(completion_time, resolution,
reference)`` — no trace content is inspected — so alignment is exact,
deterministic, and streaming-friendly (each chunk aligns independently;
see ``repro.pipeline.attack_consumers.LatticeCpaConsumer``).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.attacks.cpa import CpaResult, PredictionModel, cpa_attack
from repro.attacks.models import last_round_hd_predictions
from repro.errors import AttackError
from repro.power.acquisition import TraceSet


def lattice_cells(
    completion_times_ns: np.ndarray, resolution_ns: float
) -> np.ndarray:
    """Quantize completion times onto the lattice, returning cell ids.

    ``resolution_ns`` is the quantization step; completion times within
    half a step of each other share a cell (and hence a realignment
    shift).  Anything at or below the scope's sample period loses no
    alignment precision.
    """
    if not np.isfinite(resolution_ns) or resolution_ns <= 0:
        raise AttackError("resolution_ns must be a positive finite float")
    times = np.asarray(completion_times_ns, dtype=np.float64)
    if times.ndim != 1:
        raise AttackError("completion_times_ns must be (n,)")
    if times.size and (not np.isfinite(times).all() or times.min() < 0):
        raise AttackError("completion times must be finite and non-negative")
    return np.round(times / resolution_ns).astype(np.int64)


def lattice_shifts(
    completion_times_ns: np.ndarray,
    sample_period_ns: float,
    reference_ns: float,
    resolution_ns: Optional[float] = None,
) -> np.ndarray:
    """Per-trace sample shifts that move every completion time onto
    ``reference_ns`` (positive = shift right / delay the trace)."""
    if not np.isfinite(sample_period_ns) or sample_period_ns <= 0:
        raise AttackError("sample_period_ns must be a positive finite float")
    if not np.isfinite(reference_ns) or reference_ns < 0:
        raise AttackError("reference_ns must be a non-negative finite float")
    if resolution_ns is None:
        resolution_ns = sample_period_ns
    cells = lattice_cells(completion_times_ns, resolution_ns)
    cell_times = cells.astype(np.float64) * resolution_ns
    return np.round(
        (reference_ns - cell_times) / sample_period_ns
    ).astype(np.int64)


def lattice_align(
    traces: np.ndarray,
    completion_times_ns: np.ndarray,
    sample_period_ns: float,
    reference_ns: float,
    resolution_ns: Optional[float] = None,
) -> np.ndarray:
    """Shift each trace so its completion time lands on ``reference_ns``.

    Samples shifted in from outside the capture window are zero — they
    carry no information either way, and zeros keep the output a dense
    matrix CPA can consume directly.  Returns a new ``(n, S)`` float64
    array; the input is never modified.
    """
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 2:
        raise AttackError("traces must be (n, S)")
    shifts = lattice_shifts(
        completion_times_ns, sample_period_ns, reference_ns, resolution_ns
    )
    if shifts.shape[0] != traces.shape[0]:
        raise AttackError(
            "completion_times_ns length must match the trace count"
        )
    n, s = traces.shape
    if n == 0:
        return traces.copy()
    source = np.arange(s, dtype=np.int64)[None, :] - shifts[:, None]
    valid = (source >= 0) & (source < s)
    gathered = traces[
        np.arange(n, dtype=np.int64)[:, None], np.clip(source, 0, s - 1)
    ]
    return np.where(valid, gathered, 0.0)


def lattice_reference_ns(completion_times_ns: np.ndarray) -> float:
    """The canonical alignment reference: the slowest completion time.

    Aligning onto the latest lattice point shifts every trace right, so
    the reference sample always sits inside the capture window (the
    scope records at least through the slowest encryption).  Derive it
    from the *plan's* full lattice
    (:meth:`~repro.rftc.planner.FrequencyPlan.all_completion_times_ns`)
    when streaming, so the reference never depends on which traces have
    arrived.
    """
    times = np.asarray(completion_times_ns, dtype=np.float64)
    if times.size == 0 or not np.isfinite(times).all():
        raise AttackError("need a non-empty finite completion-time set")
    return float(times.max())


def lattice_occupancy(
    completion_times_ns: np.ndarray, resolution_ns: float
) -> "tuple[np.ndarray, np.ndarray]":
    """Observed lattice cells and their trace counts (diagnostics)."""
    cells = lattice_cells(completion_times_ns, resolution_ns)
    return np.unique(cells, return_counts=True)


def lattice_cpa_attack(
    trace_set: TraceSet,
    byte_indices: Sequence[int] = (0,),
    reference_ns: Optional[float] = None,
    resolution_ns: Optional[float] = None,
    model: PredictionModel = last_round_hd_predictions,
) -> CpaResult:
    """Full lattice-alignment attack on a collected campaign.

    Aligns on the campaign's own slowest completion time unless an
    explicit ``reference_ns`` is given, then runs the standard CPA
    engine on the realigned matrix.
    """
    if reference_ns is None:
        reference_ns = lattice_reference_ns(trace_set.completion_times_ns)
    aligned = lattice_align(
        trace_set.traces,
        trace_set.completion_times_ns,
        trace_set.sample_period_ns,
        reference_ns,
        resolution_ns,
    )
    return cpa_attack(
        aligned, trace_set.ciphertexts, byte_indices=byte_indices, model=model
    )


def lattice_rank(
    trace_set: TraceSet,
    true_key_byte: int,
    byte_index: int = 0,
    reference_ns: Optional[float] = None,
    resolution_ns: Optional[float] = None,
) -> int:
    """Rank of the true round-10 key byte after lattice alignment."""
    if not 0 <= true_key_byte <= 255:
        raise AttackError("true_key_byte must be a byte")
    result = lattice_cpa_attack(
        trace_set,
        byte_indices=(byte_index,),
        reference_ns=reference_ns,
        resolution_ns=resolution_ns,
    )
    return result.byte_results[0].rank_of(true_key_byte)
