"""Key-rank metrics: how close an unsuccessful attack got.

``key_rank`` is the rank of the true byte in one attack's guess ranking;
``guessing_entropy`` (Standaert et al.) averages it over repeated attacks.
These power the success-rate machinery and give the partial-progress signal
the paper's SR curves summarize.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.attacks.cpa import CpaByteResult, CpaResult
from repro.errors import AttackError


def key_rank(result: CpaByteResult, true_byte: int) -> int:
    """Rank of the true key byte (0 == recovered)."""
    return result.rank_of(true_byte)


def full_key_rank_product_log2(result: CpaResult, true_key: bytes) -> float:
    """log2 of the product of per-byte ranks+1 — a cheap full-key rank bound.

    Enumerating keys in per-byte rank order visits the true key after at
    most prod(rank_b + 1) candidates; the log2 of that product is the
    standard cheap estimate of remaining brute-force effort.
    """
    if len(true_key) != 16:
        raise AttackError("true_key must be 16 bytes")
    total = 0.0
    for r in result.byte_results:
        total += np.log2(r.rank_of(true_key[r.byte_index]) + 1)
    return float(total)


def guessing_entropy(ranks: Sequence[int]) -> float:
    """Average rank over repeated attacks (per byte)."""
    arr = np.asarray(ranks, dtype=np.float64)
    if arr.size == 0:
        raise AttackError("guessing_entropy requires at least one rank")
    if (arr < 0).any():
        raise AttackError("ranks must be non-negative")
    return float(arr.mean())
