"""Streaming CPA: correlate without holding the trace matrix.

The paper's campaigns reach four million traces; at 256 samples that is a
~4 GB matrix even in float32.  The Pearson coefficient decomposes into five
running sums — Σx, Σx², Σy, Σy², Σxy — so CPA can fold trace batches as
they are acquired and never store them.  ``IncrementalCpa`` maintains those
sums for all 256 guesses of one key byte simultaneously; results are
bit-identical (up to float summation order) to the batch engine, which the
test suite checks.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.attacks.cpa import CpaByteResult, CpaResult, PredictionModel
from repro.attacks.models import hd_pair_table, last_round_hd_predictions
from repro.crypto.aes_tables import SHIFT_ROWS_MAP
from repro.errors import AttackError, CheckpointError
from repro.obs.metrics import NULL_METRICS

_SUM_FIELDS = ("sum_t", "sum_t2", "sum_p", "sum_p2", "sum_pt")


def _snapshot_sums(acc) -> dict:
    """Exact copy of an accumulator's running sums (omitted while empty)."""
    state: dict = {"n_traces": int(acc.n_traces)}
    if acc._sum_t is not None:
        for name in _SUM_FIELDS:
            state[name] = getattr(acc, f"_{name}").copy()
    return state


def _restore_sums(acc, state: dict) -> None:
    """Overwrite an accumulator's running sums from a snapshot state."""
    n = int(state.get("n_traces", 0))
    if n < 0:
        raise CheckpointError("snapshot n_traces must be >= 0")
    if n > 0 and any(name not in state for name in _SUM_FIELDS):
        raise CheckpointError(
            "snapshot with traces accumulated must carry all five sums"
        )
    acc.n_traces = n
    if "sum_t" in state:
        for name in _SUM_FIELDS:
            setattr(acc, f"_{name}", np.array(state[name], dtype=np.float64))
    else:
        for name in _SUM_FIELDS:
            setattr(acc, f"_{name}", None)


class IncrementalCpa:
    """Running-sums CPA accumulator for one key byte.

    Parameters
    ----------
    byte_index:
        The attacked key byte.
    model:
        Prediction model mapping ``(data, byte_index) -> (n, 256)``.
    """

    def __init__(
        self,
        byte_index: int = 0,
        model: PredictionModel = last_round_hd_predictions,
    ):
        if not 0 <= byte_index < 16:
            raise AttackError(f"byte_index must be in [0, 16), got {byte_index}")
        self.byte_index = int(byte_index)
        self.model = model
        self.n_traces = 0
        self._metrics = NULL_METRICS
        self._sum_t: Optional[np.ndarray] = None  # (S,)
        self._sum_t2: Optional[np.ndarray] = None  # (S,)
        self._sum_p: Optional[np.ndarray] = None  # (256,)
        self._sum_p2: Optional[np.ndarray] = None  # (256,)
        self._sum_pt: Optional[np.ndarray] = None  # (256, S)

    def set_metrics(self, metrics) -> None:
        """Report fold cost into ``metrics`` (a MetricsRegistry)."""
        self._metrics = metrics

    def update(self, traces: np.ndarray, data: np.ndarray) -> None:
        """Fold a batch of traces and their known data into the sums.

        float32 batches take a reduced-precision GEMM path (the running
        sums stay float64, so snapshots and merges are unchanged); any
        other dtype is folded in float64 exactly as before.
        """
        started = time.perf_counter() if self._metrics.enabled else 0.0
        traces = np.asarray(traces)
        if traces.dtype != np.float32:
            traces = np.asarray(traces, dtype=np.float64)
        if traces.ndim != 2:
            raise AttackError("traces must be (n, S)")
        if traces.shape[0] != np.asarray(data).shape[0]:
            raise AttackError("traces and data disagree on the batch size")
        if traces.shape[0] == 0:
            return  # zero traces: exact no-op, nothing to allocate or fold
        predictions = self.model(data, self.byte_index).astype(traces.dtype)
        if self._sum_t is None:
            s = traces.shape[1]
            self._sum_t = np.zeros(s)
            self._sum_t2 = np.zeros(s)
            self._sum_p = np.zeros(256)
            self._sum_p2 = np.zeros(256)
            self._sum_pt = np.zeros((256, s))
        elif traces.shape[1] != self._sum_t.shape[0]:
            raise AttackError("batch sample count does not match accumulator")
        self.n_traces += traces.shape[0]
        if traces.dtype == np.float32:
            # Prediction sums stay exact (integer-valued, < 2**24); the
            # trace sums reduce in float64 so only the GEMM loses bits.
            self._sum_t += traces.sum(axis=0, dtype=np.float64)
            self._sum_t2 += np.einsum(
                "ns,ns->s", traces, traces, dtype=np.float64
            )
            self._sum_p += predictions.sum(axis=0, dtype=np.float64)
            self._sum_p2 += np.einsum(
                "nk,nk->k", predictions, predictions, dtype=np.float64
            )
            self._sum_pt += predictions.T @ traces
        else:
            self._sum_t += traces.sum(axis=0)
            self._sum_t2 += (traces * traces).sum(axis=0)
            self._sum_p += predictions.sum(axis=0)
            self._sum_p2 += (predictions * predictions).sum(axis=0)
            self._sum_pt += predictions.T @ traces
        if self._metrics.enabled:
            label = f"cpa[{self.byte_index}]"
            self._metrics.observe(
                "cpa_update_seconds",
                time.perf_counter() - started,
                accumulator=label,
            )
            self._metrics.inc(
                "cpa_traces_folded_total", traces.shape[0], accumulator=label
            )

    def merge(self, other: "IncrementalCpa") -> None:
        """Fold another accumulator's sums into this one.

        The running sums are plain additive, so two accumulators built
        from disjoint trace shards combine exactly — this is what lets a
        pipeline fan CPA out across workers and still report one ranking.
        """
        if not isinstance(other, IncrementalCpa):
            raise AttackError("can only merge another IncrementalCpa")
        if other.byte_index != self.byte_index or other.model is not self.model:
            raise AttackError(
                "merge requires matching byte_index and prediction model"
            )
        if other._sum_t is None or other.n_traces == 0:
            return  # empty shard (even width-pinned): exact no-op
        if self._sum_t is None:
            s = other._sum_t.shape[0]
            self._sum_t = np.zeros(s)
            self._sum_t2 = np.zeros(s)
            self._sum_p = np.zeros(256)
            self._sum_p2 = np.zeros(256)
            self._sum_pt = np.zeros((256, s))
        elif other._sum_t.shape[0] != self._sum_t.shape[0]:
            raise AttackError("accumulators disagree on the sample count")
        self.n_traces += other.n_traces
        self._sum_t += other._sum_t
        self._sum_t2 += other._sum_t2
        self._sum_p += other._sum_p
        self._sum_p2 += other._sum_p2
        self._sum_pt += other._sum_pt

    def snapshot(self) -> dict:
        """Serializable state: byte index plus the five exact running sums.

        The prediction model is *not* serialized; :meth:`restore` must be
        called on an accumulator constructed with the same model.
        """
        state = _snapshot_sums(self)
        state["byte_index"] = self.byte_index
        return state

    def restore(self, state: dict) -> None:
        """Overwrite this accumulator with a :meth:`snapshot` state."""
        if int(state.get("byte_index", -1)) != self.byte_index:
            raise CheckpointError(
                f"snapshot is for byte {state.get('byte_index')}, "
                f"accumulator attacks byte {self.byte_index}"
            )
        _restore_sums(self, state)

    def correlation(self) -> np.ndarray:
        """Current ``(256, S)`` Pearson matrix."""
        if self._sum_t is None or self.n_traces < 2:
            raise AttackError("accumulate at least 2 traces first")
        n = self.n_traces
        cov = self._sum_pt - np.outer(self._sum_p, self._sum_t) / n
        var_p = self._sum_p2 - self._sum_p**2 / n
        var_t = self._sum_t2 - self._sum_t**2 / n
        var_p[var_p < 0] = 0.0
        var_t[var_t < 0] = 0.0
        denom = np.sqrt(np.outer(var_p, var_t))
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(denom > 0.0, cov / denom, 0.0)

    def result(self, keep_corr_matrix: bool = False) -> CpaByteResult:
        """Current attack outcome, shaped like the batch engine's."""
        corr = self.correlation()
        peak = np.abs(corr).max(axis=1)
        return CpaByteResult(
            byte_index=self.byte_index,
            peak_corr=peak,
            best_guess=int(np.argmax(peak)),
            corr_matrix=corr if keep_corr_matrix else None,
        )


class IncrementalCpaBank:
    """Running-sums CPA over several key bytes with shared trace moments.

    Sixteen :class:`IncrementalCpa` instances each maintain their own
    Σt/Σt² and issue their own per-chunk GEMM; for a full-key streaming
    attack that recomputes the trace sums 16 times and runs 16 small
    matrix products per chunk.  The bank keeps **one** copy of the trace
    sums and stacks every byte's 256 guesses into a single ``(B·256, S)``
    cross-sum updated by one GEMM per chunk — the streaming twin of
    :class:`~repro.attacks.cpa.CpaEngine`.

    The default ``engine="fast"`` additionally exploits that the
    last-round HD model depends on the ciphertext only through the byte
    pair ``(ct[b], ct[SR(b)])``: predictions become one row gather from
    the shared :func:`~repro.attacks.models.hd_pair_table`, and the
    cross-sum GEMM runs on the trace block augmented with a ones column
    so ``Σp`` falls out of the same BLAS call (exact — every addend is an
    integer).  For float64 batches the fast engine is bit-identical to
    ``engine="reference"`` (the pre-optimization update, kept for
    benchmarking and as an executable specification); float32 batches
    run the whole GEMM in float32 while the running sums stay float64.

    Parameters
    ----------
    byte_indices:
        The attacked key bytes (all 16 by default).
    model:
        Prediction model mapping ``(data, byte_index) -> (n, 256)``.
        Custom models fall back to the reference update path.
    engine:
        ``"fast"`` (gather + augmented tiled GEMM) or ``"reference"``.
    tile_samples:
        Output-column tile width for the fast engine's GEMM (``None``
        disables tiling).  Tiling never changes results: BLAS keeps the
        reduction dimension whole, so each output element is the same
        dot product either way.
    """

    def __init__(
        self,
        byte_indices: Sequence[int] = tuple(range(16)),
        model: PredictionModel = last_round_hd_predictions,
        engine: str = "fast",
        tile_samples: Optional[int] = None,
    ):
        if not byte_indices:
            raise AttackError("at least one byte index is required")
        for b in byte_indices:
            if not 0 <= b < 16:
                raise AttackError(f"byte_index must be in [0, 16), got {b}")
        if len(set(byte_indices)) != len(byte_indices):
            raise AttackError("byte_indices must be unique")
        if engine not in ("fast", "reference"):
            raise AttackError(
                f"engine must be 'fast' or 'reference', got {engine!r}"
            )
        if tile_samples is not None and tile_samples < 1:
            raise AttackError("tile_samples must be >= 1 (or None)")
        self.byte_indices = tuple(int(b) for b in byte_indices)
        self.model = model
        self.engine = engine
        self.tile_samples = tile_samples
        self.n_traces = 0
        self._metrics = NULL_METRICS
        self._n_hyp = 256 * len(self.byte_indices)
        self._scratch: dict = {}
        self._sum_t: Optional[np.ndarray] = None  # (S,)
        self._sum_t2: Optional[np.ndarray] = None  # (S,)
        self._sum_p: Optional[np.ndarray] = None  # (B*256,)
        self._sum_p2: Optional[np.ndarray] = None  # (B*256,)
        self._sum_pt: Optional[np.ndarray] = None  # (B*256, S)

    def set_metrics(self, metrics) -> None:
        """Report fold cost into ``metrics`` (a MetricsRegistry)."""
        self._metrics = metrics

    def _predictions(self, data: np.ndarray) -> np.ndarray:
        return np.concatenate(
            [self.model(data, b).astype(np.float64) for b in self.byte_indices],
            axis=1,
        )

    def _ensure_sums(self, s: int) -> None:
        if self._sum_t is None:
            self._sum_t = np.zeros(s)
            self._sum_t2 = np.zeros(s)
            self._sum_p = np.zeros(self._n_hyp)
            self._sum_p2 = np.zeros(self._n_hyp)
            self._sum_pt = np.zeros((self._n_hyp, s))
        elif s != self._sum_t.shape[0]:
            raise AttackError("batch sample count does not match accumulator")

    def _scratch_buf(self, name: str, shape: tuple, dtype) -> np.ndarray:
        """Reusable uninitialised buffer (reallocated on shape change)."""
        buf = self._scratch.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype=dtype)
            self._scratch[name] = buf
        return buf

    def update(self, traces: np.ndarray, data: np.ndarray) -> None:
        """Fold a batch of traces and their known data into the sums."""
        started = time.perf_counter() if self._metrics.enabled else 0.0
        traces = np.asarray(traces)
        if traces.dtype != np.float32 or self.engine != "fast":
            traces = np.asarray(traces, dtype=np.float64)
        if traces.ndim != 2:
            raise AttackError("traces must be (n, S)")
        if traces.shape[0] != np.asarray(data).shape[0]:
            raise AttackError("traces and data disagree on the batch size")
        if traces.shape[0] == 0:
            return  # zero traces: exact no-op, nothing to allocate or fold
        if self.engine == "fast" and self.model is last_round_hd_predictions:
            self._update_fast(traces, data)
        else:
            self._update_reference(traces, data)
        if self._metrics.enabled:
            self._metrics.observe(
                "cpa_update_seconds",
                time.perf_counter() - started,
                accumulator="cpa_bank",
            )
            self._metrics.inc(
                "cpa_traces_folded_total",
                traces.shape[0],
                accumulator="cpa_bank",
            )

    def _update_reference(self, traces: np.ndarray, data: np.ndarray) -> None:
        """The pre-optimization update: concatenate models, plain GEMM."""
        traces = np.asarray(traces, dtype=np.float64)
        predictions = self._predictions(data)
        self._ensure_sums(traces.shape[1])
        self.n_traces += traces.shape[0]
        self._sum_t += traces.sum(axis=0)
        self._sum_t2 += (traces * traces).sum(axis=0)
        self._sum_p += predictions.sum(axis=0)
        self._sum_p2 += (predictions * predictions).sum(axis=0)
        self._sum_pt += predictions.T @ traces

    def _update_fast(self, traces: np.ndarray, data: np.ndarray) -> None:
        """Pair-table gather + augmented tiled GEMM (see class docstring).

        float64 batches are bit-identical to :meth:`_update_reference`:
        the prediction-side sums are integer-valued and every addend is
        exactly representable, so both computations land on the same
        integers, and the augmented / tiled GEMM keeps the reduction
        dimension whole so each ``Σpt`` element is the same dot product
        (``tests/attacks/test_incremental_fast.py`` pins both claims).
        """
        ct = np.asarray(data, dtype=np.uint8)
        if ct.ndim != 2 or ct.shape[1] != 16:
            raise AttackError("ciphertexts must be (n, 16) uint8")
        n, s = traces.shape
        self._ensure_sums(s)
        compute = traces.dtype
        table = hd_pair_table()
        gathered = self._scratch_buf("gathered", (n, self._n_hyp), np.uint8)
        # One fused gather for all attacked bytes: C-order (n, B) pair
        # indices land row i*B+j of the (n*B, 256) view exactly on
        # gathered[i, 256j:256(j+1)].
        targets = np.asarray(self.byte_indices, dtype=np.intp)
        partners = SHIFT_ROWS_MAP[targets]
        pair = (ct[:, targets].astype(np.uint16) << 8) | ct[:, partners]
        np.take(
            table,
            pair.reshape(-1),
            axis=0,
            out=gathered.reshape(n * len(self.byte_indices), 256),
        )
        preds = self._scratch_buf("preds", (n, self._n_hyp), compute)
        np.copyto(preds, gathered)
        augmented = self._scratch_buf("augmented", (n, s + 1), compute)
        augmented[:, :s] = traces
        augmented[:, s] = 1.0
        cross = self._scratch_buf("cross", (self._n_hyp, s + 1), compute)
        tile = self.tile_samples if self.tile_samples is not None else s + 1
        preds_t = preds.T
        for lo in range(0, s + 1, tile):
            hi = min(lo + tile, s + 1)
            np.matmul(preds_t, augmented[:, lo:hi], out=cross[:, lo:hi])
        self.n_traces += n
        if compute == np.float32:
            self._sum_t += traces.sum(axis=0, dtype=np.float64)
            self._sum_t2 += np.einsum(
                "ns,ns->s", traces, traces, dtype=np.float64
            )
        else:
            self._sum_t += traces.sum(axis=0)
            self._sum_t2 += (traces * traces).sum(axis=0)
        self._sum_p += cross[:, s]
        # Σp² addends are integers (p ≤ 8, so p² ≤ 64): exact in float64
        # always, and exact in float32 for every realistic chunk size
        # (n·64 < 2²⁴ ⇔ n < 262144); float32 beyond that is budgeted
        # drift, not corruption.
        self._sum_p2 += np.einsum("nk,nk->k", preds, preds)
        self._sum_pt += cross[:, :s]

    def merge(self, other: "IncrementalCpaBank") -> None:
        """Fold another bank's sums into this one (shard-parallel CPA)."""
        if not isinstance(other, IncrementalCpaBank):
            raise AttackError("can only merge another IncrementalCpaBank")
        if (
            other.byte_indices != self.byte_indices
            or other.model is not self.model
        ):
            raise AttackError(
                "merge requires matching byte_indices and prediction model"
            )
        if other._sum_t is None or other.n_traces == 0:
            return  # empty shard (even width-pinned): exact no-op
        if self._sum_t is None:
            s = other._sum_t.shape[0]
            self._sum_t = np.zeros(s)
            self._sum_t2 = np.zeros(s)
            self._sum_p = np.zeros(self._n_hyp)
            self._sum_p2 = np.zeros(self._n_hyp)
            self._sum_pt = np.zeros((self._n_hyp, s))
        elif other._sum_t.shape[0] != self._sum_t.shape[0]:
            raise AttackError("accumulators disagree on the sample count")
        self.n_traces += other.n_traces
        self._sum_t += other._sum_t
        self._sum_t2 += other._sum_t2
        self._sum_p += other._sum_p
        self._sum_p2 += other._sum_p2
        self._sum_pt += other._sum_pt

    def snapshot(self) -> dict:
        """Serializable state: attacked bytes plus the exact running sums."""
        state = _snapshot_sums(self)
        state["byte_indices"] = list(self.byte_indices)
        return state

    def restore(self, state: dict) -> None:
        """Overwrite this bank with a :meth:`snapshot` state."""
        snapped = tuple(int(b) for b in state.get("byte_indices", ()))
        if snapped != self.byte_indices:
            raise CheckpointError(
                f"snapshot attacks bytes {snapped}, "
                f"bank attacks {self.byte_indices}"
            )
        _restore_sums(self, state)

    def correlation(self) -> np.ndarray:
        """Current ``(B, 256, S)`` Pearson matrices, one byte per slab."""
        if self._sum_t is None or self.n_traces < 2:
            raise AttackError("accumulate at least 2 traces first")
        n = self.n_traces
        cov = self._sum_pt - np.outer(self._sum_p, self._sum_t) / n
        var_p = self._sum_p2 - self._sum_p**2 / n
        var_t = self._sum_t2 - self._sum_t**2 / n
        var_p[var_p < 0] = 0.0
        var_t[var_t < 0] = 0.0
        denom = np.sqrt(np.outer(var_p, var_t))
        with np.errstate(invalid="ignore", divide="ignore"):
            corr = np.where(denom > 0.0, cov / denom, 0.0)
        return corr.reshape(len(self.byte_indices), 256, -1)

    def result(self, keep_corr_matrix: bool = False) -> CpaResult:
        """Current attack outcome across all attacked bytes."""
        corr = self.correlation()
        peaks = np.abs(corr).max(axis=2)
        return CpaResult(
            byte_results=[
                CpaByteResult(
                    byte_index=b,
                    peak_corr=peaks[i],
                    best_guess=int(np.argmax(peaks[i])),
                    corr_matrix=corr[i] if keep_corr_matrix else None,
                )
                for i, b in enumerate(self.byte_indices)
            ]
        )
