"""Streaming CPA: correlate without holding the trace matrix.

The paper's campaigns reach four million traces; at 256 samples that is a
~4 GB matrix even in float32.  The Pearson coefficient decomposes into five
running sums — Σx, Σx², Σy, Σy², Σxy — so CPA can fold trace batches as
they are acquired and never store them.  ``IncrementalCpa`` maintains those
sums for all 256 guesses of one key byte simultaneously; results are
bit-identical (up to float summation order) to the batch engine, which the
test suite checks.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.attacks.cpa import CpaByteResult, CpaResult, PredictionModel
from repro.attacks.models import last_round_hd_predictions
from repro.errors import AttackError, CheckpointError
from repro.obs.metrics import NULL_METRICS

_SUM_FIELDS = ("sum_t", "sum_t2", "sum_p", "sum_p2", "sum_pt")


def _snapshot_sums(acc) -> dict:
    """Exact copy of an accumulator's running sums (omitted while empty)."""
    state: dict = {"n_traces": int(acc.n_traces)}
    if acc._sum_t is not None:
        for name in _SUM_FIELDS:
            state[name] = getattr(acc, f"_{name}").copy()
    return state


def _restore_sums(acc, state: dict) -> None:
    """Overwrite an accumulator's running sums from a snapshot state."""
    n = int(state.get("n_traces", 0))
    if n < 0:
        raise CheckpointError("snapshot n_traces must be >= 0")
    if n > 0 and any(name not in state for name in _SUM_FIELDS):
        raise CheckpointError(
            "snapshot with traces accumulated must carry all five sums"
        )
    acc.n_traces = n
    if "sum_t" in state:
        for name in _SUM_FIELDS:
            setattr(acc, f"_{name}", np.array(state[name], dtype=np.float64))
    else:
        for name in _SUM_FIELDS:
            setattr(acc, f"_{name}", None)


class IncrementalCpa:
    """Running-sums CPA accumulator for one key byte.

    Parameters
    ----------
    byte_index:
        The attacked key byte.
    model:
        Prediction model mapping ``(data, byte_index) -> (n, 256)``.
    """

    def __init__(
        self,
        byte_index: int = 0,
        model: PredictionModel = last_round_hd_predictions,
    ):
        if not 0 <= byte_index < 16:
            raise AttackError(f"byte_index must be in [0, 16), got {byte_index}")
        self.byte_index = int(byte_index)
        self.model = model
        self.n_traces = 0
        self._metrics = NULL_METRICS
        self._sum_t: Optional[np.ndarray] = None  # (S,)
        self._sum_t2: Optional[np.ndarray] = None  # (S,)
        self._sum_p: Optional[np.ndarray] = None  # (256,)
        self._sum_p2: Optional[np.ndarray] = None  # (256,)
        self._sum_pt: Optional[np.ndarray] = None  # (256, S)

    def set_metrics(self, metrics) -> None:
        """Report fold cost into ``metrics`` (a MetricsRegistry)."""
        self._metrics = metrics

    def update(self, traces: np.ndarray, data: np.ndarray) -> None:
        """Fold a batch of traces and their known data into the sums."""
        started = time.perf_counter() if self._metrics.enabled else 0.0
        traces = np.asarray(traces, dtype=np.float64)
        if traces.ndim != 2:
            raise AttackError("traces must be (n, S)")
        if traces.shape[0] != np.asarray(data).shape[0]:
            raise AttackError("traces and data disagree on the batch size")
        if traces.shape[0] == 0:
            return  # zero traces: exact no-op, nothing to allocate or fold
        predictions = self.model(data, self.byte_index).astype(np.float64)
        if self._sum_t is None:
            s = traces.shape[1]
            self._sum_t = np.zeros(s)
            self._sum_t2 = np.zeros(s)
            self._sum_p = np.zeros(256)
            self._sum_p2 = np.zeros(256)
            self._sum_pt = np.zeros((256, s))
        elif traces.shape[1] != self._sum_t.shape[0]:
            raise AttackError("batch sample count does not match accumulator")
        self.n_traces += traces.shape[0]
        self._sum_t += traces.sum(axis=0)
        self._sum_t2 += (traces * traces).sum(axis=0)
        self._sum_p += predictions.sum(axis=0)
        self._sum_p2 += (predictions * predictions).sum(axis=0)
        self._sum_pt += predictions.T @ traces
        if self._metrics.enabled:
            label = f"cpa[{self.byte_index}]"
            self._metrics.observe(
                "cpa_update_seconds",
                time.perf_counter() - started,
                accumulator=label,
            )
            self._metrics.inc(
                "cpa_traces_folded_total", traces.shape[0], accumulator=label
            )

    def merge(self, other: "IncrementalCpa") -> None:
        """Fold another accumulator's sums into this one.

        The running sums are plain additive, so two accumulators built
        from disjoint trace shards combine exactly — this is what lets a
        pipeline fan CPA out across workers and still report one ranking.
        """
        if not isinstance(other, IncrementalCpa):
            raise AttackError("can only merge another IncrementalCpa")
        if other.byte_index != self.byte_index or other.model is not self.model:
            raise AttackError(
                "merge requires matching byte_index and prediction model"
            )
        if other._sum_t is None or other.n_traces == 0:
            return  # empty shard (even width-pinned): exact no-op
        if self._sum_t is None:
            s = other._sum_t.shape[0]
            self._sum_t = np.zeros(s)
            self._sum_t2 = np.zeros(s)
            self._sum_p = np.zeros(256)
            self._sum_p2 = np.zeros(256)
            self._sum_pt = np.zeros((256, s))
        elif other._sum_t.shape[0] != self._sum_t.shape[0]:
            raise AttackError("accumulators disagree on the sample count")
        self.n_traces += other.n_traces
        self._sum_t += other._sum_t
        self._sum_t2 += other._sum_t2
        self._sum_p += other._sum_p
        self._sum_p2 += other._sum_p2
        self._sum_pt += other._sum_pt

    def snapshot(self) -> dict:
        """Serializable state: byte index plus the five exact running sums.

        The prediction model is *not* serialized; :meth:`restore` must be
        called on an accumulator constructed with the same model.
        """
        state = _snapshot_sums(self)
        state["byte_index"] = self.byte_index
        return state

    def restore(self, state: dict) -> None:
        """Overwrite this accumulator with a :meth:`snapshot` state."""
        if int(state.get("byte_index", -1)) != self.byte_index:
            raise CheckpointError(
                f"snapshot is for byte {state.get('byte_index')}, "
                f"accumulator attacks byte {self.byte_index}"
            )
        _restore_sums(self, state)

    def correlation(self) -> np.ndarray:
        """Current ``(256, S)`` Pearson matrix."""
        if self._sum_t is None or self.n_traces < 2:
            raise AttackError("accumulate at least 2 traces first")
        n = self.n_traces
        cov = self._sum_pt - np.outer(self._sum_p, self._sum_t) / n
        var_p = self._sum_p2 - self._sum_p**2 / n
        var_t = self._sum_t2 - self._sum_t**2 / n
        var_p[var_p < 0] = 0.0
        var_t[var_t < 0] = 0.0
        denom = np.sqrt(np.outer(var_p, var_t))
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(denom > 0.0, cov / denom, 0.0)

    def result(self, keep_corr_matrix: bool = False) -> CpaByteResult:
        """Current attack outcome, shaped like the batch engine's."""
        corr = self.correlation()
        peak = np.abs(corr).max(axis=1)
        return CpaByteResult(
            byte_index=self.byte_index,
            peak_corr=peak,
            best_guess=int(np.argmax(peak)),
            corr_matrix=corr if keep_corr_matrix else None,
        )


class IncrementalCpaBank:
    """Running-sums CPA over several key bytes with shared trace moments.

    Sixteen :class:`IncrementalCpa` instances each maintain their own
    Σt/Σt² and issue their own per-chunk GEMM; for a full-key streaming
    attack that recomputes the trace sums 16 times and runs 16 small
    matrix products per chunk.  The bank keeps **one** copy of the trace
    sums and stacks every byte's 256 guesses into a single ``(B·256, S)``
    cross-sum updated by one GEMM per chunk — the streaming twin of
    :class:`~repro.attacks.cpa.CpaEngine`.

    Parameters
    ----------
    byte_indices:
        The attacked key bytes (all 16 by default).
    model:
        Prediction model mapping ``(data, byte_index) -> (n, 256)``.
    """

    def __init__(
        self,
        byte_indices: Sequence[int] = tuple(range(16)),
        model: PredictionModel = last_round_hd_predictions,
    ):
        if not byte_indices:
            raise AttackError("at least one byte index is required")
        for b in byte_indices:
            if not 0 <= b < 16:
                raise AttackError(f"byte_index must be in [0, 16), got {b}")
        if len(set(byte_indices)) != len(byte_indices):
            raise AttackError("byte_indices must be unique")
        self.byte_indices = tuple(int(b) for b in byte_indices)
        self.model = model
        self.n_traces = 0
        self._metrics = NULL_METRICS
        self._n_hyp = 256 * len(self.byte_indices)
        self._sum_t: Optional[np.ndarray] = None  # (S,)
        self._sum_t2: Optional[np.ndarray] = None  # (S,)
        self._sum_p: Optional[np.ndarray] = None  # (B*256,)
        self._sum_p2: Optional[np.ndarray] = None  # (B*256,)
        self._sum_pt: Optional[np.ndarray] = None  # (B*256, S)

    def set_metrics(self, metrics) -> None:
        """Report fold cost into ``metrics`` (a MetricsRegistry)."""
        self._metrics = metrics

    def _predictions(self, data: np.ndarray) -> np.ndarray:
        return np.concatenate(
            [self.model(data, b).astype(np.float64) for b in self.byte_indices],
            axis=1,
        )

    def update(self, traces: np.ndarray, data: np.ndarray) -> None:
        """Fold a batch of traces and their known data into the sums."""
        started = time.perf_counter() if self._metrics.enabled else 0.0
        traces = np.asarray(traces, dtype=np.float64)
        if traces.ndim != 2:
            raise AttackError("traces must be (n, S)")
        if traces.shape[0] != np.asarray(data).shape[0]:
            raise AttackError("traces and data disagree on the batch size")
        if traces.shape[0] == 0:
            return  # zero traces: exact no-op, nothing to allocate or fold
        predictions = self._predictions(data)
        if self._sum_t is None:
            s = traces.shape[1]
            self._sum_t = np.zeros(s)
            self._sum_t2 = np.zeros(s)
            self._sum_p = np.zeros(self._n_hyp)
            self._sum_p2 = np.zeros(self._n_hyp)
            self._sum_pt = np.zeros((self._n_hyp, s))
        elif traces.shape[1] != self._sum_t.shape[0]:
            raise AttackError("batch sample count does not match accumulator")
        self.n_traces += traces.shape[0]
        self._sum_t += traces.sum(axis=0)
        self._sum_t2 += (traces * traces).sum(axis=0)
        self._sum_p += predictions.sum(axis=0)
        self._sum_p2 += (predictions * predictions).sum(axis=0)
        self._sum_pt += predictions.T @ traces
        if self._metrics.enabled:
            self._metrics.observe(
                "cpa_update_seconds",
                time.perf_counter() - started,
                accumulator="cpa_bank",
            )
            self._metrics.inc(
                "cpa_traces_folded_total",
                traces.shape[0],
                accumulator="cpa_bank",
            )

    def merge(self, other: "IncrementalCpaBank") -> None:
        """Fold another bank's sums into this one (shard-parallel CPA)."""
        if not isinstance(other, IncrementalCpaBank):
            raise AttackError("can only merge another IncrementalCpaBank")
        if (
            other.byte_indices != self.byte_indices
            or other.model is not self.model
        ):
            raise AttackError(
                "merge requires matching byte_indices and prediction model"
            )
        if other._sum_t is None or other.n_traces == 0:
            return  # empty shard (even width-pinned): exact no-op
        if self._sum_t is None:
            s = other._sum_t.shape[0]
            self._sum_t = np.zeros(s)
            self._sum_t2 = np.zeros(s)
            self._sum_p = np.zeros(self._n_hyp)
            self._sum_p2 = np.zeros(self._n_hyp)
            self._sum_pt = np.zeros((self._n_hyp, s))
        elif other._sum_t.shape[0] != self._sum_t.shape[0]:
            raise AttackError("accumulators disagree on the sample count")
        self.n_traces += other.n_traces
        self._sum_t += other._sum_t
        self._sum_t2 += other._sum_t2
        self._sum_p += other._sum_p
        self._sum_p2 += other._sum_p2
        self._sum_pt += other._sum_pt

    def snapshot(self) -> dict:
        """Serializable state: attacked bytes plus the exact running sums."""
        state = _snapshot_sums(self)
        state["byte_indices"] = list(self.byte_indices)
        return state

    def restore(self, state: dict) -> None:
        """Overwrite this bank with a :meth:`snapshot` state."""
        snapped = tuple(int(b) for b in state.get("byte_indices", ()))
        if snapped != self.byte_indices:
            raise CheckpointError(
                f"snapshot attacks bytes {snapped}, "
                f"bank attacks {self.byte_indices}"
            )
        _restore_sums(self, state)

    def correlation(self) -> np.ndarray:
        """Current ``(B, 256, S)`` Pearson matrices, one byte per slab."""
        if self._sum_t is None or self.n_traces < 2:
            raise AttackError("accumulate at least 2 traces first")
        n = self.n_traces
        cov = self._sum_pt - np.outer(self._sum_p, self._sum_t) / n
        var_p = self._sum_p2 - self._sum_p**2 / n
        var_t = self._sum_t2 - self._sum_t**2 / n
        var_p[var_p < 0] = 0.0
        var_t[var_t < 0] = 0.0
        denom = np.sqrt(np.outer(var_p, var_t))
        with np.errstate(invalid="ignore", divide="ignore"):
            corr = np.where(denom > 0.0, cov / denom, 0.0)
        return corr.reshape(len(self.byte_indices), 256, -1)

    def result(self, keep_corr_matrix: bool = False) -> CpaResult:
        """Current attack outcome across all attacked bytes."""
        corr = self.correlation()
        peaks = np.abs(corr).max(axis=2)
        return CpaResult(
            byte_results=[
                CpaByteResult(
                    byte_index=b,
                    peak_corr=peaks[i],
                    best_guess=int(np.argmax(peaks[i])),
                    corr_matrix=corr[i] if keep_corr_matrix else None,
                )
                for i, b in enumerate(self.byte_indices)
            ]
        )
