"""Success-rate estimation (Pammu et al. convention, as used in Sec. 7).

SR(n) is the probability that an attack given n traces recovers the key;
the paper estimates it by repeating each attack 100 times on random trace
subsets.  ``success_rate_curve`` reproduces that protocol, optionally
routing each subset through a preprocessor (DTW / PCA / FFT) first — the
preprocessor must see only the subset, as a real attacker would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.attacks.cpa import PredictionModel, cpa_attack
from repro.attacks.models import (
    expand_last_round_key,
    last_round_hd_predictions,
)
from repro.errors import AttackError
from repro.power.acquisition import TraceSet

#: A trace preprocessor: (traces,) -> transformed traces (possibly with a
#: different sample count).
Preprocessor = Callable[[np.ndarray], np.ndarray]


def wilson_interval(
    successes: np.ndarray, n: int, z: float = 1.96
) -> np.ndarray:
    """Wilson score interval(s) for binomial proportions, shape ``(..., 2)``.

    Well-defined at the edges: SR = 0 and SR = 1 produce finite bounds
    clipped into [0, 1], never NaN.  ``successes`` may be a scalar or an
    array of success counts out of ``n`` trials.
    """
    if n < 1:
        raise AttackError("wilson_interval needs n >= 1 trials")
    if z <= 0:
        raise AttackError("z must be positive")
    successes = np.asarray(successes, dtype=np.float64)
    if successes.size and (
        successes.min() < 0 or successes.max() > n
    ):
        raise AttackError("successes must lie in [0, n]")
    p = successes / n
    denom = 1 + z**2 / n
    center = (p + z**2 / (2 * n)) / denom
    half = (z / denom) * np.sqrt(p * (1 - p) / n + z**2 / (4 * n**2))
    return np.stack(
        [np.clip(center - half, 0, 1), np.clip(center + half, 0, 1)], axis=-1
    )


@dataclass
class SuccessRateCurve:
    """SR(n) estimates plus provenance.

    Attributes
    ----------
    trace_counts:
        The n values at which SR was estimated.
    success_rates:
        Estimated SR at each n.
    n_repeats:
        Attacks per point.
    byte_indices:
        Key bytes attacked; success means *all* of them recovered.
    label:
        Human-readable curve name ("CPA on RFTC(1, 4)" ...).
    """

    trace_counts: np.ndarray
    success_rates: np.ndarray
    n_repeats: int
    byte_indices: Sequence[int]
    label: str = ""
    mean_ranks: Optional[np.ndarray] = None

    def traces_to_disclosure(self, threshold: float = 0.8) -> Optional[int]:
        """Smallest measured n with SR >= threshold; None if never reached."""
        above = np.nonzero(self.success_rates >= threshold)[0]
        if above.size == 0:
            return None
        return int(self.trace_counts[above[0]])

    def confidence_intervals(self, z: float = 1.96) -> np.ndarray:
        """Wilson score intervals for each SR estimate, shape ``(k, 2)``.

        The paper's 100-repeat protocol still leaves ~+-0.1 uncertainty
        near SR = 0.5; reporting the interval keeps scaled-budget runs
        honest about it.
        """
        return wilson_interval(
            self.success_rates * self.n_repeats, self.n_repeats, z
        )


def success_rate_curve(
    trace_set: TraceSet,
    trace_counts: Sequence[int],
    n_repeats: int = 100,
    byte_indices: Sequence[int] = (0,),
    model: PredictionModel = last_round_hd_predictions,
    preprocess: Optional[Preprocessor] = None,
    rng: Optional[np.random.Generator] = None,
    label: str = "",
    use_plaintexts: bool = False,
    seed: Optional[int] = None,
) -> SuccessRateCurve:
    """Estimate SR(n) by repeated subsampled attacks.

    Parameters
    ----------
    trace_set:
        The full campaign; subsets are drawn from it without replacement.
    trace_counts:
        Subset sizes (the SR curve's x axis).
    n_repeats:
        Attacks per subset size (paper: 100).
    byte_indices:
        Key bytes attacked; an attack succeeds when every one is correct.
    model:
        Prediction model; the default last-round HD model consumes
        ciphertexts (set ``use_plaintexts=True`` for first-round models).
    preprocess:
        Optional per-subset trace transform (DTW / PCA / FFT...).
    rng / seed:
        The subsampling randomness — exactly one must be given (a
        generator, or an int that derives one through ``SeedSequence``).
        There is deliberately no unseeded fallback: the curve would
        silently change between runs, violating the repo-wide
        replayable-from-seed contract (and the ``repro verify`` lint
        bans unseeded ``default_rng()`` in ``src/`` for the same
        reason).  A fixed seed makes the curve byte-reproducible.
    """
    if (rng is None) == (seed is None):
        raise AttackError(
            "success_rate_curve needs exactly one of rng= or seed= — "
            "subsampling must be replayable, so there is no unseeded default"
        )
    if rng is None:
        rng = np.random.default_rng(np.random.SeedSequence(seed))
    counts = np.asarray(sorted(set(int(c) for c in trace_counts)), dtype=np.int64)
    if counts.size == 0 or counts[0] < 4:
        raise AttackError("trace_counts must contain values >= 4")
    if counts[-1] > trace_set.n_traces:
        raise AttackError(
            f"largest subset ({counts[-1]}) exceeds the campaign size "
            f"({trace_set.n_traces})"
        )
    if n_repeats < 1:
        raise AttackError("n_repeats must be >= 1")

    true_round_key = expand_last_round_key(trace_set.key)
    truth = trace_set.key if use_plaintexts else true_round_key
    data_source = trace_set.plaintexts if use_plaintexts else trace_set.ciphertexts

    rates = np.empty(counts.size, dtype=np.float64)
    mean_ranks = np.empty(counts.size, dtype=np.float64)
    for ci, n in enumerate(counts):
        successes = 0
        rank_acc: List[float] = []
        for _ in range(n_repeats):
            idx = rng.choice(trace_set.n_traces, size=int(n), replace=False)
            traces = trace_set.traces[idx]
            if preprocess is not None:
                traces = preprocess(traces)
            result = cpa_attack(
                traces, data_source[idx], byte_indices=byte_indices, model=model
            )
            ok = all(
                r.best_guess == truth[r.byte_index] for r in result.byte_results
            )
            successes += int(ok)
            rank_acc.append(
                float(
                    np.mean(
                        [r.rank_of(truth[r.byte_index]) for r in result.byte_results]
                    )
                )
            )
        rates[ci] = successes / n_repeats
        mean_ranks[ci] = float(np.mean(rank_acc))
    return SuccessRateCurve(
        trace_counts=counts,
        success_rates=rates,
        n_repeats=n_repeats,
        byte_indices=tuple(byte_indices),
        label=label,
        mean_ranks=mean_ranks,
    )


def traces_to_disclosure(
    curve: SuccessRateCurve, threshold: float = 0.8
) -> Optional[int]:
    """Module-level convenience alias of the curve method."""
    return curve.traces_to_disclosure(threshold)
