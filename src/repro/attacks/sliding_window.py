"""Sliding-Window CPA (Fledel & Wool, 2018) — the paper's other future-work
attack against devices with unstable clocks.

Instead of correlating per sample (where a jittering clock spreads the
target operation across many samples), the trace is first *integrated* over
overlapping windows: window k holds the sum of samples [k*step, k*step+width).
An operation landing anywhere inside a window contributes its full energy
to it, so correlation survives misalignment up to the window width — at the
cost of folding in the other operations sharing the window (more
algorithmic noise).  Width buys misalignment tolerance, loses SNR: the
classic trade this module lets experiments sweep.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.attacks.cpa import CpaResult, PredictionModel, cpa_attack
from repro.attacks.models import last_round_hd_predictions
from repro.errors import AttackError, ConfigurationError


def sliding_window_sums(
    traces: np.ndarray, width: int, step: int = 1
) -> np.ndarray:
    """Integrate traces over overlapping windows.

    Returns ``(n, n_windows)`` with ``n_windows = (S - width) // step + 1``.
    """
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 2:
        raise AttackError("traces must be (n, S)")
    s = traces.shape[1]
    if width < 1 or width > s:
        raise ConfigurationError(f"window width must be in [1, {s}]")
    if step < 1:
        raise ConfigurationError("step must be >= 1")
    csum = np.cumsum(np.pad(traces, ((0, 0), (1, 0))), axis=1)
    starts = np.arange(0, s - width + 1, step)
    return csum[:, starts + width] - csum[:, starts]


class SlidingWindowPreprocessor:
    """Callable wrapper for the success-rate machinery."""

    def __init__(self, width: int = 16, step: int = 4):
        if width < 1:
            raise ConfigurationError("width must be >= 1")
        if step < 1:
            raise ConfigurationError("step must be >= 1")
        self.width = int(width)
        self.step = int(step)

    def __call__(self, traces: np.ndarray) -> np.ndarray:
        return sliding_window_sums(traces, self.width, self.step)


def sliding_window_cpa(
    traces: np.ndarray,
    data: np.ndarray,
    byte_indices: Sequence[int] = (0,),
    width: int = 16,
    step: int = 4,
    model: PredictionModel = last_round_hd_predictions,
) -> CpaResult:
    """CPA on window-integrated traces (one-call convenience)."""
    windows = sliding_window_sums(traces, width, step)
    return cpa_attack(windows, data, byte_indices=byte_indices, model=model)


def best_window_width(
    traces: np.ndarray,
    data: np.ndarray,
    true_key_byte: int,
    byte_index: int = 0,
    widths: Sequence[int] = (1, 4, 8, 16, 32, 64),
    model: PredictionModel = last_round_hd_predictions,
) -> dict:
    """Sweep window widths; report the rank of the true byte at each.

    The evaluation helper for the width-vs-SNR trade: against an unstable
    clock the optimum is the misalignment magnitude, against an aligned
    target it is ~the pulse width.
    """
    if not 0 <= true_key_byte <= 255:
        raise AttackError("true_key_byte must be a byte value")
    results = {}
    for width in widths:
        result = sliding_window_cpa(
            traces,
            data,
            byte_indices=(byte_index,),
            width=width,
            step=max(1, width // 4),
            model=model,
        )
        results[int(width)] = result.byte_results[0].rank_of(true_key_byte)
    return results
