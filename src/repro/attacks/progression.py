"""Attack progression: how an attack's key rank evolves with trace count.

The SR machinery answers "what fraction of repeated attacks succeed at n";
this module answers the cheaper, smoother question "how close is *one*
attack after n traces" by evaluating nested prefixes of one campaign.  The
resulting rank/correlation-margin curves are what the paper's Fig. 4/5
success-rate curves integrate over, and they converge with far less
compute — useful for exploratory work and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.attacks.cpa import PredictionModel, cpa_byte
from repro.attacks.models import expand_last_round_key, last_round_hd_predictions
from repro.errors import AttackError
from repro.power.acquisition import TraceSet


@dataclass
class RankProgression:
    """Rank-vs-traces curve for one key byte.

    Attributes
    ----------
    trace_counts:
        Prefix sizes evaluated.
    ranks:
        Rank of the true byte at each prefix (0 = recovered).
    margins:
        ``peak_corr[true] - max(peak_corr[others])`` at each prefix; positive
        once the attack has won, and its trend shows convergence direction.
    byte_index:
        The attacked key byte.
    """

    trace_counts: np.ndarray
    ranks: np.ndarray
    margins: np.ndarray
    byte_index: int
    label: str = ""

    def first_disclosure(self) -> Optional[int]:
        """Smallest prefix with rank 0 (None if never)."""
        hits = np.nonzero(self.ranks == 0)[0]
        if hits.size == 0:
            return None
        return int(self.trace_counts[hits[0]])

    def converging(self) -> bool:
        """Heuristic: is the margin improving over the last half of the curve?"""
        if self.margins.size < 4:
            raise AttackError("need at least 4 points to judge convergence")
        half = self.margins.size // 2
        return float(self.margins[half:].mean()) > float(self.margins[:half].mean())


def rank_progression(
    trace_set: TraceSet,
    trace_counts: Sequence[int],
    byte_index: int = 0,
    model: PredictionModel = last_round_hd_predictions,
    preprocess: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    use_plaintexts: bool = False,
    label: str = "",
) -> RankProgression:
    """Evaluate one attack on nested prefixes of a campaign.

    Prefixes (not random subsets) model an attacker accumulating traces;
    the preprocessor, when given, sees each prefix independently.
    """
    counts = np.asarray(sorted(set(int(c) for c in trace_counts)), dtype=np.int64)
    if counts.size == 0 or counts[0] < 4:
        raise AttackError("trace_counts must contain values >= 4")
    if counts[-1] > trace_set.n_traces:
        raise AttackError(
            f"largest prefix ({counts[-1]}) exceeds the campaign "
            f"({trace_set.n_traces})"
        )
    truth = (
        trace_set.key if use_plaintexts else expand_last_round_key(trace_set.key)
    )
    data = trace_set.plaintexts if use_plaintexts else trace_set.ciphertexts
    ranks: List[int] = []
    margins: List[float] = []
    for n in counts:
        traces = trace_set.traces[:n]
        if preprocess is not None:
            traces = preprocess(traces)
        result = cpa_byte(traces, data[:n], byte_index, model=model)
        ranks.append(result.rank_of(truth[byte_index]))
        true_peak = result.peak_corr[truth[byte_index]]
        others = np.delete(result.peak_corr, truth[byte_index])
        margins.append(float(true_peak - others.max()))
    return RankProgression(
        trace_counts=counts,
        ranks=np.asarray(ranks),
        margins=np.asarray(margins),
        byte_index=byte_index,
        label=label,
    )


def guessing_entropy_progression(
    trace_set: TraceSet,
    trace_counts: Sequence[int],
    byte_indices: Sequence[int] = tuple(range(16)),
    model: PredictionModel = last_round_hd_predictions,
) -> np.ndarray:
    """Mean rank over key bytes at each prefix — the guessing-entropy curve.

    Returns ``(len(trace_counts),)`` mean ranks; 0 means the whole attacked
    key is first-guess recoverable.
    """
    if not byte_indices:
        raise AttackError("at least one byte index required")
    curves = [
        rank_progression(trace_set, trace_counts, byte_index=b, model=model).ranks
        for b in byte_indices
    ]
    return np.mean(np.stack(curves), axis=0)
