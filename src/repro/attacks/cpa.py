"""Correlation Power Analysis (Brier, Clavier, Olivier — CHES 2004).

For each key-byte guess, correlate the model's predicted leakage against
every trace sample; the guess whose correlation peaks highest (in absolute
value, anywhere in the trace) is the attack's answer.  Misalignment
countermeasures like RFTC work precisely by spreading the secret round's
samples so that no single sample correlates for the right guess.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.attacks.models import last_round_hd_predictions
from repro.errors import AttackError
from repro.utils.stats import column_pearson

#: Signature of a prediction model: (ciphertexts_or_plaintexts, byte_index)
#: -> (n, 256) predictions.
PredictionModel = Callable[[np.ndarray, int], np.ndarray]


@dataclass
class CpaByteResult:
    """Outcome of CPA on one key byte.

    Attributes
    ----------
    byte_index:
        Which key byte was attacked.
    peak_corr:
        ``(256,)`` best absolute correlation of each guess over all samples.
    best_guess:
        argmax of ``peak_corr``.
    corr_matrix:
        Optional full ``(256, n_samples)`` correlation traces (kept only on
        request — it is the expensive artifact).
    """

    byte_index: int
    peak_corr: np.ndarray
    best_guess: int
    corr_matrix: Optional[np.ndarray] = None

    def ranking(self) -> np.ndarray:
        """Guesses sorted from most to least likely."""
        return np.argsort(-self.peak_corr, kind="stable")

    def rank_of(self, key_byte: int) -> int:
        """Position of ``key_byte`` in the ranking (0 == attack succeeded)."""
        if not 0 <= key_byte <= 255:
            raise AttackError("key_byte must be in [0, 255]")
        return int(np.nonzero(self.ranking() == key_byte)[0][0])


@dataclass
class CpaResult:
    """Outcome of CPA on several key bytes."""

    byte_results: List[CpaByteResult]

    @property
    def recovered_bytes(self) -> List[int]:
        return [r.best_guess for r in self.byte_results]

    def recovered_key(self) -> bytes:
        """The best-guess value of every attacked byte, in byte order."""
        ordered = sorted(self.byte_results, key=lambda r: r.byte_index)
        return bytes(r.best_guess for r in ordered)

    def is_correct(self, true_round_key: bytes) -> bool:
        """True when every attacked byte matches the true (round) key."""
        for r in self.byte_results:
            if r.best_guess != true_round_key[r.byte_index]:
                return False
        return True


def cpa_byte(
    traces: np.ndarray,
    data: np.ndarray,
    byte_index: int,
    model: PredictionModel = last_round_hd_predictions,
    keep_corr_matrix: bool = False,
    sample_window: Optional[slice] = None,
) -> CpaByteResult:
    """CPA on one key byte.

    Parameters
    ----------
    traces:
        ``(n, S)`` preprocessed or raw traces.
    data:
        ``(n, 16)`` known values the model consumes (ciphertexts for the
        last-round model, plaintexts for the first-round model).
    byte_index:
        Target key byte.
    model:
        Prediction model (default: last-round Hamming distance).
    keep_corr_matrix:
        Retain the full correlation matrix for plotting.
    sample_window:
        Restrict the attack to a slice of samples (a windowed attack).
    """
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 2:
        raise AttackError("traces must be a 2-D matrix")
    if traces.shape[0] < 4:
        raise AttackError("CPA requires at least 4 traces")
    if traces.shape[0] != np.asarray(data).shape[0]:
        raise AttackError("traces and data disagree on the number of traces")
    if sample_window is not None:
        traces = traces[:, sample_window]
    predictions = model(data, byte_index).astype(np.float64)
    corr = column_pearson(predictions, traces)  # (256, S)
    peak = np.abs(corr).max(axis=1)
    best = int(np.argmax(peak))
    return CpaByteResult(
        byte_index=byte_index,
        peak_corr=peak,
        best_guess=best,
        corr_matrix=corr if keep_corr_matrix else None,
    )


def cpa_attack(
    traces: np.ndarray,
    data: np.ndarray,
    byte_indices: Sequence[int] = tuple(range(16)),
    model: PredictionModel = last_round_hd_predictions,
    sample_window: Optional[slice] = None,
) -> CpaResult:
    """CPA across several key bytes (all 16 by default)."""
    if not byte_indices:
        raise AttackError("at least one byte index is required")
    results = [
        cpa_byte(traces, data, b, model=model, sample_window=sample_window)
        for b in byte_indices
    ]
    return CpaResult(byte_results=results)
