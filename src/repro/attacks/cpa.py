"""Correlation Power Analysis (Brier, Clavier, Olivier — CHES 2004).

For each key-byte guess, correlate the model's predicted leakage against
every trace sample; the guess whose correlation peaks highest (in absolute
value, anywhere in the trace) is the attack's answer.  Misalignment
countermeasures like RFTC work precisely by spreading the secret round's
samples so that no single sample correlates for the right guess.

Multi-byte attacks should go through :class:`CpaEngine`: it centers and
normalizes the trace matrix **once**, reuses those sufficient statistics
for every key byte, and fuses all requested bytes' guesses into a single
correlation GEMM — :func:`cpa_attack` is a thin wrapper over it.  The
per-byte :func:`cpa_byte` remains the standalone reference path the engine
is tested against (see ``docs/performance.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.attacks.models import _last_round_hd_into, last_round_hd_predictions
from repro.errors import AttackError
from repro.utils.stats import center_columns, column_pearson

#: Signature of a prediction model: (ciphertexts_or_plaintexts, byte_index)
#: -> (n, 256) predictions.
PredictionModel = Callable[[np.ndarray, int], np.ndarray]


@dataclass
class CpaByteResult:
    """Outcome of CPA on one key byte.

    Attributes
    ----------
    byte_index:
        Which key byte was attacked.
    peak_corr:
        ``(256,)`` best absolute correlation of each guess over all samples.
    best_guess:
        argmax of ``peak_corr``.
    corr_matrix:
        Optional full ``(256, n_samples)`` correlation traces (kept only on
        request — it is the expensive artifact).
    """

    byte_index: int
    peak_corr: np.ndarray
    best_guess: int
    corr_matrix: Optional[np.ndarray] = None

    def ranking(self) -> np.ndarray:
        """Guesses sorted from most to least likely."""
        return np.argsort(-self.peak_corr, kind="stable")

    def rank_of(self, key_byte: int) -> int:
        """Position of ``key_byte`` in the ranking (0 == attack succeeded)."""
        if not 0 <= key_byte <= 255:
            raise AttackError("key_byte must be in [0, 255]")
        return int(np.nonzero(self.ranking() == key_byte)[0][0])


@dataclass
class CpaResult:
    """Outcome of CPA on several key bytes."""

    byte_results: List[CpaByteResult]

    @property
    def recovered_bytes(self) -> List[int]:
        return [r.best_guess for r in self.byte_results]

    def recovered_key(self) -> bytes:
        """The best-guess value of every attacked byte, in byte order."""
        ordered = sorted(self.byte_results, key=lambda r: r.byte_index)
        return bytes(r.best_guess for r in ordered)

    def is_correct(self, true_round_key: bytes) -> bool:
        """True when every attacked byte matches the true (round) key."""
        for r in self.byte_results:
            if r.best_guess != true_round_key[r.byte_index]:
                return False
        return True


def cpa_byte(
    traces: np.ndarray,
    data: np.ndarray,
    byte_index: int,
    model: PredictionModel = last_round_hd_predictions,
    keep_corr_matrix: bool = False,
    sample_window: Optional[slice] = None,
) -> CpaByteResult:
    """CPA on one key byte.

    Parameters
    ----------
    traces:
        ``(n, S)`` preprocessed or raw traces.
    data:
        ``(n, 16)`` known values the model consumes (ciphertexts for the
        last-round model, plaintexts for the first-round model).
    byte_index:
        Target key byte.
    model:
        Prediction model (default: last-round Hamming distance).
    keep_corr_matrix:
        Retain the full correlation matrix for plotting.
    sample_window:
        Restrict the attack to a slice of samples (a windowed attack).
    """
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 2:
        raise AttackError("traces must be a 2-D matrix")
    if traces.shape[0] < 4:
        raise AttackError("CPA requires at least 4 traces")
    if traces.shape[0] != np.asarray(data).shape[0]:
        raise AttackError("traces and data disagree on the number of traces")
    if sample_window is not None:
        traces = traces[:, sample_window]
    predictions = model(data, byte_index).astype(np.float64)
    corr = column_pearson(predictions, traces)  # (256, S)
    peak = np.abs(corr).max(axis=1)
    best = int(np.argmax(peak))
    return CpaByteResult(
        byte_index=byte_index,
        peak_corr=peak,
        best_guess=best,
        corr_matrix=corr if keep_corr_matrix else None,
    )


class CpaEngine:
    """Multi-byte CPA sharing the trace moments across all guesses.

    ``cpa_byte`` recomputes the trace means and norms for every key byte —
    16 identical passes over an ``(n, S)`` matrix per full-key attack — and
    round-trips every intermediate through freshly allocated arrays.  The
    engine computes the trace sufficient statistics once at construction,
    then answers any number of byte attacks against them with three more
    savings per byte:

    * integer prediction models (the standard HW/HD models return uint8)
      get their column norms from exact integer sums, skipping the
      prediction-centering pass entirely — valid because the trace side is
      already centered, so ``cov = P.T @ t_centered`` equals the doubly
      centered covariance to machine precision;
    * the covariance GEMM, the float cast of the predictions, and the
      normalization all run in scratch buffers reused across bytes, so no
      ``O(n·256)`` allocation happens after the first byte;
    * peaks are taken as ``max(max, -min)`` over the correlation buffer
      without materializing ``|corr|``.

    Peak correlations and rankings match the per-byte path to ~1e-12
    (asserted by the test suite); see ``docs/performance.md``.

    Parameters
    ----------
    traces:
        ``(n, S)`` preprocessed or raw traces.
    data:
        ``(n, 16)`` known values the model consumes (ciphertexts for the
        last-round model, plaintexts for the first-round model).
    model:
        Prediction model (default: last-round Hamming distance).
    sample_window:
        Restrict the attack to a slice of samples (a windowed attack).
    tile_samples:
        Row-tile width of the covariance GEMM.  At paper-scale trace
        counts the centered trace matrix dwarfs every cache level, so the
        GEMM is blocked over samples: each tile reads a ``(tile, n)``
        slab of traces against the whole prediction block, keeping the
        prediction operand resident across tiles.  The default
        ``"auto"`` tiles by 128 once the trace matrix outgrows cache
        (n ≥ 16384, measured ~20% faster there, break-even below);
        an int forces that width, ``None`` disables tiling.  Tiling
        never changes results — BLAS keeps the reduction dimension
        whole, so every output element is the same dot product either
        way (asserted array-equal by ``tests/attacks/test_cpa_engine.py``).
    """

    _AUTO_TILE_WIDTH = 128
    _AUTO_TILE_MIN_TRACES = 16384

    def __init__(
        self,
        traces: np.ndarray,
        data: np.ndarray,
        model: PredictionModel = last_round_hd_predictions,
        sample_window: Optional[slice] = None,
        tile_samples="auto",
    ):
        if tile_samples is not None and tile_samples != "auto":
            tile_samples = int(tile_samples)
            if tile_samples < 1:
                raise AttackError("tile_samples must be >= 1, None, or 'auto'")
        self.tile_samples = tile_samples
        traces = np.asarray(traces, dtype=np.float64)
        if traces.ndim != 2:
            raise AttackError("traces must be a 2-D matrix")
        if traces.shape[0] < 4:
            raise AttackError("CPA requires at least 4 traces")
        data = np.asarray(data)
        if traces.shape[0] != data.shape[0]:
            raise AttackError("traces and data disagree on the number of traces")
        if sample_window is not None:
            traces = traces[:, sample_window]
        self.model = model
        self._data = data
        self._t_centered, self._t_norm = center_columns(traces)
        with np.errstate(divide="ignore"):
            self._t_inv = np.where(self._t_norm > 0.0, 1.0 / self._t_norm, 0.0)
        self._p_buf: Optional[np.ndarray] = None  # (n, H) float64 scratch
        self._c_buf: Optional[np.ndarray] = None  # (S, H) float64 scratch
        self._u8_buf: Optional[np.ndarray] = None  # (n, 256) uint8 scratch
        # The default model gets a fused, allocation-free kernel; validate
        # its input once here instead of on every byte.
        self._fast_hd = model is last_round_hd_predictions
        if self._fast_hd:
            ct = np.asarray(data, dtype=np.uint8)
            if ct.ndim != 2 or ct.shape[1] != 16:
                raise AttackError("ciphertexts must be (n, 16) uint8")
            self._data = ct

    @property
    def n_traces(self) -> int:
        return int(self._t_centered.shape[0])

    @property
    def n_samples(self) -> int:
        return int(self._t_centered.shape[1])

    def _byte_correlation(self, byte_index: int) -> np.ndarray:
        """Pearson coefficients for one byte in the ``(S, 256)`` scratch.

        The returned array is the engine's reusable buffer: consume it (or
        copy it) before the next call.
        """
        n = self.n_traces
        if self._fast_hd:
            if self._u8_buf is None:
                self._u8_buf = np.empty((n, 256), dtype=np.uint8)
            predictions = _last_round_hd_into(
                self._data, byte_index, self._u8_buf
            )
        else:
            predictions = self.model(self._data, byte_index)
        n_hyp = predictions.shape[1]
        if self._p_buf is None or self._p_buf.shape[1] != n_hyp:
            self._p_buf = np.empty((n, n_hyp), dtype=np.float64)
            self._c_buf = np.empty((self.n_samples, n_hyp), dtype=np.float64)
        np.copyto(self._p_buf, predictions)
        if np.issubdtype(predictions.dtype, np.integer):
            # Exact column norms from the raw sums (the small integer
            # values are exact in float64); the trace side is centered, so
            # skipping the prediction centering changes the covariance only
            # at machine precision.
            sum_p = self._p_buf.sum(axis=0)
            sum_p2 = np.einsum("nk,nk->k", self._p_buf, self._p_buf)
            var_p = np.maximum(sum_p2 - sum_p * sum_p / n, 0.0)
            p_norm = np.sqrt(var_p)
        else:
            self._p_buf -= self._p_buf.mean(axis=0, keepdims=True)
            p_norm = np.sqrt(
                np.einsum("nk,nk->k", self._p_buf, self._p_buf)
            )
        s = self.n_samples
        if self.tile_samples == "auto":
            tile = (
                self._AUTO_TILE_WIDTH
                if n >= self._AUTO_TILE_MIN_TRACES
                else s
            )
        else:
            tile = self.tile_samples if self.tile_samples is not None else s
        tile = max(int(tile), 1)
        t_centered_t = self._t_centered.T
        for lo in range(0, s, tile):
            hi = min(lo + tile, s)
            np.matmul(
                t_centered_t[lo:hi], self._p_buf, out=self._c_buf[lo:hi]
            )
        with np.errstate(divide="ignore"):
            p_inv = np.where(p_norm > 0.0, 1.0 / p_norm, 0.0)
        corr = self._c_buf
        corr *= self._t_inv[:, None]
        corr *= p_inv[None, :]
        return corr

    def correlation(self, byte_indices: Sequence[int]) -> np.ndarray:
        """``(len(byte_indices), 256, S)`` Pearson matrices."""
        if not len(byte_indices):
            raise AttackError("at least one byte index is required")
        out = None
        for i, b in enumerate(byte_indices):
            corr = self._byte_correlation(b)
            if out is None:
                out = np.empty(
                    (len(byte_indices), corr.shape[1], corr.shape[0])
                )
            out[i] = corr.T
        return out

    def attack_byte(
        self, byte_index: int, keep_corr_matrix: bool = False
    ) -> CpaByteResult:
        """CPA on one key byte against the shared trace statistics."""
        corr = self._byte_correlation(byte_index)  # (S, 256)
        peak = np.maximum(corr.max(axis=0), -corr.min(axis=0))
        return CpaByteResult(
            byte_index=byte_index,
            peak_corr=peak,
            best_guess=int(np.argmax(peak)),
            corr_matrix=corr.T.copy() if keep_corr_matrix else None,
        )

    def attack(
        self,
        byte_indices: Sequence[int] = tuple(range(16)),
        keep_corr_matrix: bool = False,
    ) -> CpaResult:
        """CPA across several key bytes (all 16 by default)."""
        if not byte_indices:
            raise AttackError("at least one byte index is required")
        return CpaResult(
            byte_results=[
                self.attack_byte(b, keep_corr_matrix=keep_corr_matrix)
                for b in byte_indices
            ]
        )


def cpa_attack(
    traces: np.ndarray,
    data: np.ndarray,
    byte_indices: Sequence[int] = tuple(range(16)),
    model: PredictionModel = last_round_hd_predictions,
    sample_window: Optional[slice] = None,
) -> CpaResult:
    """CPA across several key bytes (all 16 by default).

    Delegates to :class:`CpaEngine` so the trace moments are computed once
    and the per-guess correlations run as one fused GEMM.
    """
    if not byte_indices:
        raise AttackError("at least one byte index is required")
    engine = CpaEngine(traces, data, model=model, sample_window=sample_window)
    return engine.attack(byte_indices)
