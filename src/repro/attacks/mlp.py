"""Profiled MLP attack: a learned adversary on raw misaligned traces.

The deep-learning side-channel literature (ASCAD onward) shows small
multi-layer perceptrons trained on raw traces absorb misalignment that
defeats first-order statistics — exactly the mechanism RFTC relies on —
so the zoo needs one to probe whether the countermeasure's margin
survives a *learned* adversary, not just CPA and Gaussian templates.

The threat model mirrors ``repro.attacks.template``: the attacker
profiles a clone device under a known key (``train_mlp_profile``), then
classifies the victim's traces (``mlp_attack``).  The network is pure
numpy — one or more ReLU hidden layers into a 9-way softmax over the
last-round Hamming-distance classes — trained by minibatch SGD with
cross-entropy loss.  Everything random (weight init, epoch shuffles)
comes from one ``SeedSequence``-derived generator and every array op
runs in float64 in a fixed order, so training is bit-reproducible:
identical inputs and config produce byte-identical weights on any host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.attacks.models import last_round_hd_predictions
from repro.errors import AttackError

#: Number of leakage classes: HD of one state byte is 0..8.
N_CLASSES = 9


@dataclass(frozen=True)
class MlpConfig:
    """Training knobs for the profiled MLP (defaults sized for the
    repo's laptop-scale campaigns, not ASCAD-scale GPUs).

    Attributes
    ----------
    hidden_sizes:
        Width of each ReLU hidden layer.
    epochs / batch_size / learning_rate:
        Plain minibatch SGD schedule (no momentum — fewer moving parts
        to keep bit-reproducible).
    l2:
        Weight-decay coefficient applied to the weight matrices.
    seed:
        Root of the ``SeedSequence`` that derives weight init and the
        per-epoch shuffles.  Same seed + same data = same weights, bit
        for bit.
    """

    hidden_sizes: Tuple[int, ...] = (16,)
    epochs: int = 30
    batch_size: int = 128
    learning_rate: float = 0.05
    l2: float = 0.03
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.hidden_sizes or any(h < 1 for h in self.hidden_sizes):
            raise AttackError("hidden_sizes must be non-empty positive ints")
        if self.epochs < 1 or self.batch_size < 1:
            raise AttackError("epochs and batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise AttackError("learning_rate must be positive")
        if self.l2 < 0:
            raise AttackError("l2 must be >= 0")


@dataclass
class MlpModel:
    """A trained profiled classifier (weights plus input normalization).

    Attributes
    ----------
    weights / biases:
        Layer parameters, input to output.
    mean / std:
        Per-sample standardization constants estimated on the profiling
        set and reused verbatim on the victim's traces.
    byte_index:
        The key byte the profiling labels targeted.
    config:
        The training configuration (for provenance).
    final_loss:
        Mean cross-entropy over the profiling set after the last epoch.
    """

    weights: List[np.ndarray]
    biases: List[np.ndarray]
    mean: np.ndarray
    std: np.ndarray
    byte_index: int
    config: MlpConfig = field(default_factory=MlpConfig)
    final_loss: float = float("nan")


def _log_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))


def _forward(
    model_weights: List[np.ndarray],
    model_biases: List[np.ndarray],
    x: np.ndarray,
) -> "Tuple[List[np.ndarray], np.ndarray]":
    """Hidden activations (post-ReLU) plus output log-probabilities."""
    hidden: List[np.ndarray] = []
    out = x
    for w, b in zip(model_weights[:-1], model_biases[:-1]):
        out = np.maximum(out @ w + b, 0.0)
        hidden.append(out)
    logits = out @ model_weights[-1] + model_biases[-1]
    return hidden, _log_softmax(logits)


def train_mlp_profile(
    traces: np.ndarray,
    ciphertexts: np.ndarray,
    key_byte: int,
    byte_index: int = 0,
    config: "MlpConfig | None" = None,
) -> MlpModel:
    """Profile: fit the MLP to the clone device's labelled traces.

    ``key_byte`` is the *known* round-10 key byte of the profiling
    device; labels are the last-round HD classes it implies.
    """
    config = config if config is not None else MlpConfig()
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 2 or traces.shape[0] < 32:
        raise AttackError("profiling needs a (n >= 32, S) trace matrix")
    if not 0 <= key_byte <= 255:
        raise AttackError("key_byte must be a byte")
    labels = last_round_hd_predictions(ciphertexts, byte_index)[:, key_byte]
    labels = labels.astype(np.int64)
    n, n_samples = traces.shape

    mean = traces.mean(axis=0)
    std = traces.std(axis=0)
    std = np.where(std < 1e-12, 1.0, std)
    x = (traces - mean) / std

    rng = np.random.default_rng(np.random.SeedSequence(config.seed))
    sizes = (n_samples, *config.hidden_sizes, N_CLASSES)
    weights = [
        rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(fan_in, fan_out))
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:])
    ]
    biases = [np.zeros(fan_out) for fan_out in sizes[1:]]

    lr = config.learning_rate
    final_loss = float("nan")
    for _epoch in range(config.epochs):
        order = rng.permutation(n)
        epoch_loss = 0.0
        for start in range(0, n, config.batch_size):
            batch = order[start : start + config.batch_size]
            xb, yb = x[batch], labels[batch]
            m = xb.shape[0]
            hidden, log_probs = _forward(weights, biases, xb)
            epoch_loss -= float(log_probs[np.arange(m), yb].sum())
            # Backward: softmax + cross-entropy gives (p - onehot) / m.
            grad = np.exp(log_probs)
            grad[np.arange(m), yb] -= 1.0
            grad /= m
            activations = [xb, *hidden]
            for layer in range(len(weights) - 1, -1, -1):
                a = activations[layer]
                gw = a.T @ grad + config.l2 * weights[layer]
                gb = grad.sum(axis=0)
                if layer > 0:
                    grad = (grad @ weights[layer].T) * (hidden[layer - 1] > 0)
                weights[layer] -= lr * gw
                biases[layer] -= lr * gb
        final_loss = epoch_loss / n
    return MlpModel(
        weights=weights,
        biases=biases,
        mean=mean,
        std=std,
        byte_index=int(byte_index),
        config=config,
        final_loss=final_loss,
    )


def mlp_classify(model: MlpModel, traces: np.ndarray) -> np.ndarray:
    """Per-trace class log-probabilities, shape ``(n, 9)``."""
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 2:
        raise AttackError("traces must be (n, S)")
    if traces.shape[1] != model.mean.shape[0]:
        raise AttackError(
            f"trace length {traces.shape[1]} does not match the profiled "
            f"model ({model.mean.shape[0]} samples)"
        )
    x = (traces - model.mean) / model.std
    _hidden, log_probs = _forward(model.weights, model.biases, x)
    return log_probs


def mlp_expected_hd(model: MlpModel, traces: np.ndarray) -> np.ndarray:
    """Posterior-mean HD per trace, shape ``(n,)``.

    ``E[HD | trace] = sum_c c * p(c | trace)`` condenses the classifier's
    output into one denoised leakage value per trace — the feature the
    correlation scoring (and the streaming consumer, which feeds it to an
    :class:`~repro.attacks.incremental.IncrementalCpa` as a one-sample
    trace) consumes.
    """
    log_probs = mlp_classify(model, traces)
    return np.exp(log_probs) @ np.arange(N_CLASSES, dtype=np.float64)


def mlp_attack(
    model: MlpModel,
    traces: np.ndarray,
    ciphertexts: np.ndarray,
    byte_index: "int | None" = None,
    scoring: str = "correlation",
) -> np.ndarray:
    """Attack: score every key guess on the victim's traces, shape ``(256,)``.

    ``scoring="correlation"`` (default) correlates the classifier's
    posterior-mean HD (:func:`mlp_expected_hd`) against each guess's
    predicted HD — CPA with the network as a learned, misalignment-
    absorbing feature extractor.  It is markedly more sample-efficient
    here than ``scoring="loglik"`` (the ASCAD-style summed
    log-likelihood), because the rare outer HD classes (0, 1, 7, 8 —
    together ~7% of traces) get too few profiling examples for their
    probabilities to calibrate, and the log-likelihood sum amplifies
    exactly those tails while the posterior mean averages over them.
    """
    if byte_index is None:
        byte_index = model.byte_index
    if scoring not in ("correlation", "loglik"):
        raise AttackError(
            f"scoring must be 'correlation' or 'loglik', got {scoring!r}"
        )
    predictions = last_round_hd_predictions(ciphertexts, byte_index)
    if scoring == "loglik":
        log_probs = mlp_classify(model, traces)
        n = log_probs.shape[0]
        return log_probs[np.arange(n)[:, None], predictions].sum(axis=0)
    ehd = mlp_expected_hd(model, traces)
    centered = ehd - ehd.mean()
    p = predictions.astype(np.float64)
    p -= p.mean(axis=0)
    denom = np.sqrt((centered**2).sum()) * np.sqrt((p**2).sum(axis=0))
    return np.abs(centered @ p) / np.maximum(denom, 1e-30)


def mlp_rank(
    model: MlpModel,
    traces: np.ndarray,
    ciphertexts: np.ndarray,
    true_key_byte: int,
    byte_index: "int | None" = None,
    scoring: str = "correlation",
) -> int:
    """Rank of the true round-10 key byte (0 = recovered)."""
    if not 0 <= true_key_byte <= 255:
        raise AttackError("true_key_byte must be a byte")
    scores = mlp_attack(model, traces, ciphertexts, byte_index, scoring)
    order = np.argsort(-scores, kind="stable")
    return int(np.nonzero(order == true_key_byte)[0][0])
