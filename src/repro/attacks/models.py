"""Attack hypothesis models: intermediate predictions per key guess.

The paper attacks the *last* AES round (Sec. 6, following [13]): the final
register transition is S9 -> ciphertext, where

    ct[i] = SBOX[ S9[ SR(i) ] ] ^ K10[i]

so guessing one byte of the last round key K10 predicts the Hamming
distance of one register byte:

    HD = HW( INV_SBOX[ ct[i] ^ k ] ^ ct[ SR(i) ] )

This is a known-ciphertext model — exactly the threat model of Sec. 2.
Recovering all 16 bytes of K10 then inverts the key schedule back to the
AES-128 master key.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.crypto.aes_tables import INV_SBOX, RCON, SBOX, SHIFT_ROWS_MAP
from repro.errors import AttackError
from repro.utils.bitops import HW8

_GUESSES = np.arange(256, dtype=np.uint8)

# Last-round HD predictions depend on the ciphertext only through the
# byte pair (ct[byte], ct[SR(byte)]), so one 65536x256 table indexed by
# ct[byte]*256 + ct[SR(byte)] serves *every* key byte: the byte index
# only selects which ciphertext columns form the pair.  Built lazily
# (16.7 MB uint8) and shared by the incremental CPA bank, where a
# single row gather replaces the xor/SBOX/xor/HW chain per key byte.
_HD_PAIR_TABLE: "list[np.ndarray]" = []


def hd_pair_table() -> np.ndarray:
    """``(65536, 256)`` uint8: ``T[x*256 + y, k] = HW(INV_SBOX[x^k] ^ y)``."""
    if not _HD_PAIR_TABLE:
        x = np.arange(256, dtype=np.uint8)
        before = INV_SBOX[x[:, None] ^ _GUESSES[None, :]]  # (x, k)
        table = HW8[before[:, None, :] ^ x[None, :, None]]  # (x, y, k)
        _HD_PAIR_TABLE.append(np.ascontiguousarray(table.reshape(65536, 256)))
    return _HD_PAIR_TABLE[0]


def last_round_hd_predictions(
    ciphertexts: np.ndarray, byte_index: int
) -> np.ndarray:
    """Hamming-distance predictions for every guess of ``K10[byte_index]``.

    Parameters
    ----------
    ciphertexts:
        ``(n, 16)`` uint8.
    byte_index:
        Which byte of the last round key is guessed (0..15).

    Returns
    -------
    ``(n, 256)`` uint8: predicted register-byte Hamming distance of the
    final round transition under each key guess.
    """
    ct = np.asarray(ciphertexts, dtype=np.uint8)
    if ct.ndim != 2 or ct.shape[1] != 16:
        raise AttackError("ciphertexts must be (n, 16) uint8")
    if not 0 <= byte_index < 16:
        raise AttackError(f"byte_index must be in [0, 16), got {byte_index}")
    partner = int(SHIFT_ROWS_MAP[byte_index])
    before = INV_SBOX[ct[:, byte_index, None] ^ _GUESSES[None, :]]
    after = ct[:, partner, None]
    return HW8[before ^ after]


def _last_round_hd_into(
    ciphertexts: np.ndarray, byte_index: int, out: np.ndarray
) -> np.ndarray:
    """:func:`last_round_hd_predictions` into a caller-owned uint8 buffer.

    Skips validation and allocation — the CPA engine calls this once per
    key byte on pre-validated ciphertexts, reusing one ``(n, 256)`` scratch
    so the model stage stays out of the allocator on the hot path.  The
    returned array *is* ``out``.
    """
    partner = int(SHIFT_ROWS_MAP[byte_index])
    np.bitwise_xor(ciphertexts[:, byte_index, None], _GUESSES[None, :], out=out)
    INV_SBOX.take(out, out=out)
    np.bitwise_xor(out, ciphertexts[:, partner, None], out=out)
    HW8.take(out, out=out)
    return out


def first_round_hw_predictions(
    plaintexts: np.ndarray, byte_index: int
) -> np.ndarray:
    """Hamming-weight predictions of ``SBOX[pt ^ k]`` (first-round model).

    The classic known-plaintext CPA target, provided for model-comparison
    studies; the paper's FPGA leaks transitions, so the last-round HD model
    is the effective one against this target.
    """
    pt = np.asarray(plaintexts, dtype=np.uint8)
    if pt.ndim != 2 or pt.shape[1] != 16:
        raise AttackError("plaintexts must be (n, 16) uint8")
    if not 0 <= byte_index < 16:
        raise AttackError(f"byte_index must be in [0, 16), got {byte_index}")
    return HW8[SBOX[pt[:, byte_index, None] ^ _GUESSES[None, :]]]


def expand_last_round_key(master_key: bytes) -> bytes:
    """The 10th round key of AES-128 — ground truth for last-round attacks."""
    from repro.crypto.aes import expand_key

    if len(master_key) != 16:
        raise AttackError("master key must be 16 bytes")
    return expand_key(master_key)[10]


def recover_master_key_from_last_round(last_round_key: Sequence[int]) -> bytes:
    """Invert the AES-128 key schedule from round key 10 to the master key.

    The schedule is invertible round by round:
    ``w[i-4] = w[i] ^ f(w[i-1])`` where f is the rotate/sub/rcon transform
    on every 4th word.
    """
    rk = list(bytes(last_round_key))
    if len(rk) != 16:
        raise AttackError("last round key must be 16 bytes")
    words = [rk[4 * i : 4 * i + 4] for i in range(4)]
    # Walk backwards: round r words from round r+1 words.
    for rnd in range(10, 0, -1):
        w0, w1, w2, w3 = words[0], words[1], words[2], words[3]
        prev3 = [w3[j] ^ w2[j] for j in range(4)]
        prev2 = [w2[j] ^ w1[j] for j in range(4)]
        prev1 = [w1[j] ^ w0[j] for j in range(4)]
        temp = prev3[1:] + prev3[:1]
        temp = [int(SBOX[b]) for b in temp]
        temp[0] ^= RCON[rnd]
        prev0 = [w0[j] ^ temp[j] for j in range(4)]
        words = [prev0, prev1, prev2, prev3]
    return bytes(b for w in words for b in w)
