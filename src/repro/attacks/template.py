"""Template attacks (Chari, Rao, Rohatgi — CHES 2002): the profiled adversary.

A stronger threat model than the paper's CPA adversary: the attacker first
*profiles* an identical device they control (known key), building a
Gaussian model of the traces for each value of a target intermediate, then
classifies the victim's traces against those templates.  Including it shows
RFTC's margin against the strongest standard adversary: misalignment
spreads each class's energy the same way it dilutes correlation, so pooled
templates degrade just like CPA — unless the attacker conditions on the
completion time, which the overlap-free planner starves of mass.

The implementation uses pooled-covariance Gaussian templates on a reduced
set of points of interest (highest inter-class variance), the standard
practical recipe.
"""

from __future__ import annotations

from dataclasses import dataclass


import numpy as np

from repro.attacks.models import last_round_hd_predictions
from repro.errors import AttackError


@dataclass
class TemplateModel:
    """Profiled Gaussian model for one key byte's HD classes.

    Attributes
    ----------
    poi:
        Indices of the points of interest used.
    means:
        ``(n_classes, n_poi)`` class means (classes = HD values 0..8).
    precision:
        Pooled inverse covariance at the points of interest.
    log_det:
        log-determinant of the pooled covariance (for the likelihood).
    class_values:
        The HD values each row of ``means`` corresponds to.
    """

    poi: np.ndarray
    means: np.ndarray
    precision: np.ndarray
    log_det: float
    class_values: np.ndarray


#: Minimum traces a class needs before it contributes anywhere in the
#: profiling pipeline.  POI selection and template building share this
#: single threshold: a class too sparse to get a template must not steer
#: POI selection either (a class mean over 2 noisy traces is mostly
#: noise, and its "signal" would pick noise samples as POIs).
MIN_CLASS_TRACES = 3


def select_points_of_interest(
    traces: np.ndarray,
    labels: np.ndarray,
    n_poi: int,
    min_class_traces: int = MIN_CLASS_TRACES,
) -> np.ndarray:
    """Samples with the highest between-class mean variance (SOST-like).

    Classes with fewer than ``min_class_traces`` members are excluded —
    the same threshold :func:`build_templates` applies, so POIs are only
    ever chosen from classes that also receive a template.
    """
    traces = np.asarray(traces, dtype=np.float64)
    labels = np.asarray(labels)
    means = []
    for value in np.unique(labels):
        group = traces[labels == value]
        if group.shape[0] >= min_class_traces:
            means.append(group.mean(axis=0))
    if len(means) < 2:
        raise AttackError("need at least 2 populated classes for POI selection")
    signal = np.var(np.stack(means), axis=0)
    n_poi = min(n_poi, traces.shape[1])
    return np.sort(np.argsort(signal)[-n_poi:])


def build_templates(
    traces: np.ndarray,
    ciphertexts: np.ndarray,
    key_byte: int,
    byte_index: int = 0,
    n_poi: int = 12,
    ridge: float = 1e-6,
) -> TemplateModel:
    """Profile: Gaussian templates per last-round HD class.

    ``key_byte`` is the *known* value of ``K10[byte_index]`` on the
    profiling device.
    """
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 2 or traces.shape[0] < 32:
        raise AttackError("profiling needs a (n >= 32, S) trace matrix")
    if not 0 <= key_byte <= 255:
        raise AttackError("key_byte must be a byte")
    labels = last_round_hd_predictions(ciphertexts, byte_index)[:, key_byte]
    values, counts = np.unique(labels, return_counts=True)
    surviving = values[counts >= MIN_CLASS_TRACES]
    if surviving.size < 2:
        raise AttackError("too few populated HD classes to profile")
    # POIs come from the surviving classes only (same threshold), so a
    # class too sparse to template never steers the sample selection.
    keep = np.isin(labels, surviving)
    poi = select_points_of_interest(traces[keep], labels[keep], n_poi)
    reduced = traces[:, poi]
    class_values = []
    means = []
    residuals = []
    for value in surviving:
        group = reduced[labels == value]
        mu = group.mean(axis=0)
        class_values.append(int(value))
        means.append(mu)
        residuals.append(group - mu)
    pooled = np.concatenate(residuals, axis=0)
    cov = (pooled.T @ pooled) / max(1, pooled.shape[0] - len(means))
    cov += ridge * np.eye(cov.shape[0]) * max(1.0, np.trace(cov) / cov.shape[0])
    sign, log_det = np.linalg.slogdet(cov)
    if sign <= 0:
        raise AttackError("pooled covariance is not positive definite")
    return TemplateModel(
        poi=poi,
        means=np.stack(means),
        precision=np.linalg.inv(cov),
        log_det=float(log_det),
        class_values=np.asarray(class_values),
    )


def template_attack(
    model: TemplateModel,
    traces: np.ndarray,
    ciphertexts: np.ndarray,
    byte_index: int = 0,
) -> np.ndarray:
    """Attack: total log-likelihood per key guess.

    For each guess, every trace's predicted HD selects a template; the
    summed Gaussian log-likelihood ranks the guesses.  Returns ``(256,)``
    scores (higher = more likely).
    """
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 2:
        raise AttackError("traces must be (n, S)")
    reduced = traces[:, model.poi]
    n = reduced.shape[0]
    # Log-likelihood of every trace under every class template.
    diffs = reduced[:, None, :] - model.means[None, :, :]  # (n, C, poi)
    mahal = np.einsum("ncp,pq,ncq->nc", diffs, model.precision, diffs)
    log_like = -0.5 * (mahal + model.log_det)  # (n, C)
    # Predicted class of each trace per guess.
    predictions = last_round_hd_predictions(ciphertexts, byte_index)  # (n, 256)
    # Map HD values to template rows; unseen classes get the nearest one.
    value_to_row = np.full(9, -1, dtype=np.int64)
    for row, value in enumerate(model.class_values):
        value_to_row[value] = row
    for value in range(9):
        if value_to_row[value] < 0:
            nearest = int(np.argmin(np.abs(model.class_values - value)))
            value_to_row[value] = nearest
    rows = value_to_row[predictions]  # (n, 256)
    scores = log_like[np.arange(n)[:, None], rows].sum(axis=0)
    return scores


def template_rank(
    model: TemplateModel,
    traces: np.ndarray,
    ciphertexts: np.ndarray,
    true_key_byte: int,
    byte_index: int = 0,
) -> int:
    """Rank of the true key byte under the template scores (0 = recovered)."""
    if not 0 <= true_key_byte <= 255:
        raise AttackError("true_key_byte must be a byte")
    scores = template_attack(model, traces, ciphertexts, byte_index)
    order = np.argsort(-scores, kind="stable")
    return int(np.nonzero(order == true_key_byte)[0][0])
