"""Mutual Information Analysis (Gierlichs et al. — CHES 2008).

A generic distinguisher: instead of assuming a *linear* leakage relation
(CPA's Pearson), MIA estimates the mutual information between the predicted
intermediate and the measured sample, catching any dependency shape.  It
rounds out the attack battery as the "model-free" adversary; against RFTC
it inherits the same misalignment dilution, since information about the
secret round is spread across samples just like correlation.

Estimation uses histogram binning of the trace samples (the standard
practical estimator), vectorized over guesses.
"""

from __future__ import annotations



import numpy as np

from repro.attacks.cpa import CpaByteResult, PredictionModel
from repro.attacks.models import last_round_hd_predictions
from repro.errors import AttackError, ConfigurationError


def mutual_information(
    predictions: np.ndarray, samples: np.ndarray, n_bins: int = 9
) -> float:
    """Histogram MI (nats) between a discrete prediction and one sample."""
    predictions = np.asarray(predictions).ravel()
    samples = np.asarray(samples, dtype=np.float64).ravel()
    if predictions.size != samples.size:
        raise AttackError("predictions and samples must pair up")
    if predictions.size < 4:
        raise AttackError("MI needs at least 4 observations")
    if n_bins < 2:
        raise ConfigurationError("n_bins must be >= 2")
    edges = np.histogram_bin_edges(samples, bins=n_bins)
    sample_bins = np.clip(np.digitize(samples, edges[1:-1]), 0, n_bins - 1)
    pred_values, pred_idx = np.unique(predictions, return_inverse=True)
    joint = np.zeros((pred_values.size, n_bins))
    np.add.at(joint, (pred_idx, sample_bins), 1.0)
    joint /= joint.sum()
    px = joint.sum(axis=1, keepdims=True)
    py = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        terms = joint * np.log(joint / (px * py))
    return float(np.nansum(terms))


def mia_byte(
    traces: np.ndarray,
    data: np.ndarray,
    byte_index: int,
    model: PredictionModel = last_round_hd_predictions,
    n_bins: int = 6,
    sample_stride: int = 1,
) -> CpaByteResult:
    """MIA on one key byte: peak MI over samples, per guess.

    ``sample_stride`` subsamples the trace axis (MI per sample is costlier
    than correlation; misaligned targets do not reward fine sampling).
    Returns a :class:`CpaByteResult` whose ``peak_corr`` carries MI values,
    so the ranking utilities apply unchanged.
    """
    traces = np.asarray(traces, dtype=np.float64)
    if traces.ndim != 2:
        raise AttackError("traces must be (n, S)")
    if traces.shape[0] < 8:
        raise AttackError("MIA requires at least 8 traces")
    if sample_stride < 1:
        raise ConfigurationError("sample_stride must be >= 1")
    predictions = model(data, byte_index)
    columns = traces[:, ::sample_stride]
    n, s = columns.shape
    n_bins = max(2, n_bins)
    # Bin every sample column once (shared across guesses).
    binned = np.empty((n, s), dtype=np.int64)
    for j in range(s):
        edges = np.histogram_bin_edges(columns[:, j], bins=n_bins)
        binned[:, j] = np.clip(
            np.digitize(columns[:, j], edges[1:-1]), 0, n_bins - 1
        )
    scores = np.zeros(256)
    hd_values = 9  # HD of a byte: 0..8
    log = np.log
    for guess in range(256):
        pred = predictions[:, guess].astype(np.int64)
        joint = np.zeros((hd_values, n_bins, s))
        # Accumulate joint histograms for all samples at once.
        flat = (pred[:, None] * n_bins + binned) + (
            np.arange(s)[None, :] * hd_values * n_bins
        )
        counts = np.bincount(flat.ravel(), minlength=hd_values * n_bins * s)
        joint = counts.reshape(s, hd_values, n_bins).astype(np.float64) / n
        px = joint.sum(axis=2, keepdims=True)
        py = joint.sum(axis=1, keepdims=True)
        with np.errstate(divide="ignore", invalid="ignore"):
            terms = joint * log(joint / (px * py))
        mi = np.nansum(terms, axis=(1, 2))
        scores[guess] = mi.max()
    return CpaByteResult(
        byte_index=byte_index,
        peak_corr=scores,
        best_guess=int(np.argmax(scores)),
    )
