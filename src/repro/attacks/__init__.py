"""Power-analysis attacks: CPA and its preprocessed variants' scaffolding."""

from repro.attacks.cpa import CpaByteResult, CpaEngine, CpaResult, cpa_attack, cpa_byte
from repro.attacks.guess import guessing_entropy, key_rank
from repro.attacks.models import (
    first_round_hw_predictions,
    last_round_hd_predictions,
    recover_master_key_from_last_round,
)
from repro.attacks.incremental import IncrementalCpa, IncrementalCpaBank
from repro.attacks.lattice import (
    lattice_align,
    lattice_cells,
    lattice_cpa_attack,
    lattice_occupancy,
    lattice_rank,
    lattice_reference_ns,
    lattice_shifts,
)
from repro.attacks.mia import mia_byte, mutual_information
from repro.attacks.mlp import (
    MlpConfig,
    MlpModel,
    mlp_attack,
    mlp_classify,
    mlp_expected_hd,
    mlp_rank,
    train_mlp_profile,
)
from repro.attacks.progression import (
    RankProgression,
    guessing_entropy_progression,
    rank_progression,
)
from repro.attacks.sliding_window import (
    SlidingWindowPreprocessor,
    sliding_window_cpa,
    sliding_window_sums,
)
from repro.attacks.template import (
    TemplateModel,
    build_templates,
    template_attack,
    template_rank,
)
from repro.attacks.success_rate import (
    SuccessRateCurve,
    success_rate_curve,
    traces_to_disclosure,
    wilson_interval,
)

__all__ = [
    "CpaByteResult",
    "CpaEngine",
    "CpaResult",
    "cpa_attack",
    "cpa_byte",
    "guessing_entropy",
    "key_rank",
    "first_round_hw_predictions",
    "last_round_hd_predictions",
    "recover_master_key_from_last_round",
    "IncrementalCpa",
    "IncrementalCpaBank",
    "lattice_align",
    "lattice_cells",
    "lattice_cpa_attack",
    "lattice_occupancy",
    "lattice_rank",
    "lattice_reference_ns",
    "lattice_shifts",
    "mia_byte",
    "mutual_information",
    "MlpConfig",
    "MlpModel",
    "mlp_attack",
    "mlp_classify",
    "mlp_expected_hd",
    "mlp_rank",
    "train_mlp_profile",
    "RankProgression",
    "guessing_entropy_progression",
    "rank_progression",
    "SlidingWindowPreprocessor",
    "sliding_window_cpa",
    "sliding_window_sums",
    "TemplateModel",
    "build_templates",
    "template_attack",
    "template_rank",
    "SuccessRateCurve",
    "success_rate_curve",
    "traces_to_disclosure",
    "wilson_interval",
]
