"""Picklable campaign specifications for the streaming pipeline.

A :class:`CampaignSpec` is everything a worker process needs to rebuild
the device under test from scratch: target name, RFTC shape, key, noise
level, and (for TVLA campaigns) the fixed plaintext.  Workers never share
live device objects — each chunk gets a *fresh* device whose randomness
comes from that chunk's spawned :class:`numpy.random.SeedSequence`, which
is what makes pipeline output a pure function of ``(spec, master seed,
chunk size)`` and independent of the worker count.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import CheckpointError, ConfigurationError
from repro.power.drift import DriftSpec

#: Non-baseline target names (baselines come from ``baseline_names()``).
_CORE_TARGETS = ("unprotected", "rftc")

#: Version tag folded into every :meth:`CampaignSpec.spec_digest` — bump
#: when the canonical field set changes, so old digests can never
#: collide with new ones.  v2 added ``dtype`` and ``compression``; v3
#: added ``acquisition`` and ``drift``.
SPEC_DIGEST_SCHEMA = "rftc-campaign-spec/3"

#: Trace dtypes a campaign can synthesize/fold in.
SPEC_DTYPES = ("float64", "float32")

#: Store chunk encodings a campaign can request.
SPEC_COMPRESSIONS = ("none", "zstd-npz")

#: Acquisition front-ends a campaign can capture through.
SPEC_ACQUISITIONS = ("scope", "cloud")


def spec_to_dict(spec: "CampaignSpec") -> dict:
    """JSON-safe description of a :class:`CampaignSpec` (bytes as hex)."""
    return {
        "target": spec.target,
        "m_outputs": spec.m_outputs,
        "p_configs": spec.p_configs,
        "key": spec.key.hex(),
        "noise_std": spec.noise_std,
        "plan_seed": spec.plan_seed,
        "fixed_plaintext": (
            spec.fixed_plaintext.hex() if spec.fixed_plaintext is not None else None
        ),
        "dtype": spec.dtype,
        "compression": spec.compression,
        "acquisition": spec.acquisition,
        "drift": spec.drift.to_dict() if spec.drift is not None else None,
    }


def spec_from_dict(fields: dict) -> "CampaignSpec":
    """Rebuild the :class:`CampaignSpec` a :func:`spec_to_dict` describes.

    ``dtype``/``compression`` default when absent so checkpoints written
    before they existed still resume (they could only have run float64,
    uncompressed campaigns).
    """
    try:
        return CampaignSpec(
            target=str(fields["target"]),
            m_outputs=int(fields["m_outputs"]),
            p_configs=int(fields["p_configs"]),
            key=bytes.fromhex(fields["key"]),
            noise_std=float(fields["noise_std"]),
            plan_seed=int(fields["plan_seed"]),
            fixed_plaintext=(
                bytes.fromhex(fields["fixed_plaintext"])
                if fields.get("fixed_plaintext") is not None
                else None
            ),
            dtype=str(fields.get("dtype", "float64")),
            compression=str(fields.get("compression", "none")),
            acquisition=str(fields.get("acquisition", "scope")),
            drift=(
                DriftSpec.from_dict(fields["drift"])
                if fields.get("drift") is not None
                else None
            ),
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise CheckpointError(f"checkpoint spec is malformed: {exc}") from exc


def campaign_targets() -> Tuple[str, ...]:
    """Every target name a :class:`CampaignSpec` accepts."""
    from repro.experiments.scenarios import baseline_names

    names = list(_CORE_TARGETS)
    names += [n for n in baseline_names() if n not in names]
    return tuple(names)


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative description of a device build for worker processes.

    Attributes
    ----------
    target:
        ``"unprotected"``, ``"rftc"``, or a baseline name
        (see :func:`campaign_targets`).
    m_outputs / p_configs / plan_seed:
        RFTC shape and the seed of its (memoized) frequency plan; ignored
        for other targets.  The plan seed is deliberately separate from
        the campaign master seed: every chunk must use the *same* plan.
    key / noise_std:
        Device key and scope noise, as in ``experiments.scenarios``.
    fixed_plaintext:
        When set, chunks interleave this plaintext on even rows (TVLA
        fixed-vs-random acquisition); ``None`` means a plain
        known-plaintext CPA campaign.
    dtype:
        Trace sample dtype out of synthesis/capture and through the
        store and consumers: ``"float64"`` (default, exact contract) or
        ``"float32"`` (half the bytes and a ~2× faster CPA fold; the
        accuracy cost is pinned by the ``float32`` drift budgets in
        ``repro verify --suite drift``).
    compression:
        Store chunk encoding: ``"none"`` (plain ``.npy``) or
        ``"zstd-npz"`` (``np.savez_compressed`` per field — zlib inside
        npz; the name records the manifest family, see
        :mod:`repro.store.chunked`).
    acquisition:
        Acquisition front-end: ``"scope"`` (the paper's bench
        oscilloscope, default) or ``"cloud"`` (an on-chip co-tenant
        sensor — band-limited, decimated, TDC-quantized, with
        shared-tenant interference; see :mod:`repro.power.cloud`).
        ``noise_std`` scales the front-end's Gaussian noise either way.
    drift:
        Optional :class:`~repro.power.drift.DriftSpec`: deterministic
        seeded temperature/voltage/aging/jitter processes applied per
        absolute trace index in the scope path.  ``None`` (default)
        models a perfectly stable environment.
    """

    target: str = "rftc"
    m_outputs: int = 2
    p_configs: int = 16
    key: bytes = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    noise_std: float = 2.0
    plan_seed: int = 2019
    fixed_plaintext: Optional[bytes] = None
    dtype: str = "float64"
    compression: str = "none"
    acquisition: str = "scope"
    drift: Optional[DriftSpec] = None

    def __post_init__(self) -> None:
        if self.target not in campaign_targets():
            raise ConfigurationError(
                f"unknown campaign target {self.target!r}; "
                f"expected one of {campaign_targets()}"
            )
        if len(self.key) != 16:
            raise ConfigurationError("key must be 16 bytes")
        if self.fixed_plaintext is not None and len(self.fixed_plaintext) != 16:
            raise ConfigurationError("fixed_plaintext must be 16 bytes")
        if self.noise_std < 0:
            raise ConfigurationError("noise_std must be >= 0")
        if self.dtype not in SPEC_DTYPES:
            raise ConfigurationError(
                f"dtype must be one of {SPEC_DTYPES}, got {self.dtype!r}"
            )
        if self.compression not in SPEC_COMPRESSIONS:
            raise ConfigurationError(
                f"compression must be one of {SPEC_COMPRESSIONS}, "
                f"got {self.compression!r}"
            )
        if self.acquisition not in SPEC_ACQUISITIONS:
            raise ConfigurationError(
                f"acquisition must be one of {SPEC_ACQUISITIONS}, "
                f"got {self.acquisition!r}"
            )
        if self.drift is not None and not isinstance(self.drift, DriftSpec):
            raise ConfigurationError(
                "drift must be a DriftSpec or None, "
                f"got {type(self.drift).__name__}"
            )

    @property
    def is_fixed_vs_random(self) -> bool:
        return self.fixed_plaintext is not None

    def warm_caches(self) -> None:
        """Precompute process-global state chunk builds will reuse.

        RFTC frequency plans are expensive and memoized per process;
        warming the cache in the parent lets forked workers inherit it
        instead of re-planning once each.
        """
        if self.target == "rftc":
            from repro.experiments.scenarios import cached_plan

            cached_plan(self.m_outputs, self.p_configs, self.plan_seed, True)

    def build_device(self, rng: np.random.Generator):
        """A fresh :class:`ProtectedAesDevice` whose randomness is ``rng``."""
        import dataclasses

        from repro.experiments.scenarios import (
            build_baseline,
            build_rftc,
            build_unprotected,
        )

        if self.target == "rftc":
            scenario = build_rftc(
                self.m_outputs,
                self.p_configs,
                key=self.key,
                seed=self.plan_seed,
                noise_std=self.noise_std,
                rng=rng,
            )
        elif self.target == "unprotected":
            scenario = build_unprotected(key=self.key, noise_std=self.noise_std)
        else:
            scenario = build_baseline(
                self.target, key=self.key, noise_std=self.noise_std, rng=rng
            )
        device = scenario.device
        if self.acquisition == "cloud":
            from repro.power.cloud import CloudSensor

            # Swap the bench scope for the on-chip co-tenant sensor;
            # noise_std scales the sensor's readout noise just as it
            # scales the scope's front-end noise.
            device.scope = CloudSensor(
                sample_rate_msps=device.synthesizer.sample_rate_msps,
                noise_std=self.noise_std,
            )
        if self.dtype != "float64":
            # Scenario builders are dtype-agnostic; the spec applies its
            # trace dtype to the measurement chain after the fact.
            device.synthesizer.dtype = self.dtype
            device.scope = dataclasses.replace(device.scope, dtype=self.dtype)
        if self.drift is not None and self.drift.enabled:
            from repro.power.drift import DriftProcess

            device.drift = DriftProcess(self.drift)
        return device

    def spec_digest(self) -> str:
        """Canonical SHA-256 of the spec (hex) — the cache/identity key.

        The digest hashes the :func:`spec_to_dict` fields serialised as
        canonical JSON (sorted keys, no whitespace) behind the
        :data:`SPEC_DIGEST_SCHEMA` version tag, so it is stable across
        processes and Python versions, survives a
        ``spec_from_dict(spec_to_dict(s))`` round trip unchanged, and
        changes whenever *any* field changes (asserted by
        ``tests/pipeline/test_spec_digest.py``).  ``repro.service`` keys
        its :class:`~repro.service.cache.ResultCache` on it, and
        checkpoint mismatch errors quote it so an operator can compare
        two campaigns at a glance.
        """
        canonical = json.dumps(
            {"schema": SPEC_DIGEST_SCHEMA, "spec": spec_to_dict(self)},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("ascii")).hexdigest()

    def label(self) -> str:
        if self.target == "rftc":
            return f"RFTC({self.m_outputs}, {self.p_configs})"
        return self.target
