"""Streaming consumers for the adversary zoo (template / MLP / lattice /
MIA / success-rate).

These wrap ``repro.attacks``' profiled and alignment-aware attackers as
:class:`~repro.pipeline.consumers.TraceConsumer` plug-ins, so every
attacker in the catalogue runs inside campaigns, checkpoints and the
scenario matrix exactly like the built-in CPA/TVLA consumers — one pass
over the traces, memory bounded by the chunk size.

Two state shapes appear here, with different merge support:

* **Additive accumulators** (scores, running sums, integer histograms)
  merge exactly across disjoint shards —
  :class:`MiaStreamConsumer` supports the populated-shard direction.
* **Rank-vs-traces curves** are acquisition-order dependent, so the
  curve-tracking consumers (:class:`TemplateAttackConsumer`,
  :class:`MlpAttackConsumer`, :class:`LatticeCpaConsumer`,
  :class:`SuccessRateConsumer`) support only the empty-shard directions
  of the merge contract (exact no-op / exact adoption), matching the
  scenario runner's ``DisclosureConsumer`` precedent.  The streaming
  engine folds chunks sequentially in the parent, so populated-shard
  merging is never required for campaign runs.

All randomness is construction-time (the success-rate consumer derives
its replica subsampling from a counter hash of an explicit seed), so
results are bit-identical across worker counts and checkpoint resume.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.attacks.incremental import IncrementalCpa
from repro.attacks.lattice import lattice_align
from repro.attacks.mlp import MlpModel, mlp_expected_hd
from repro.attacks.models import (
    expand_last_round_key,
    last_round_hd_predictions,
)
from repro.attacks.success_rate import wilson_interval
from repro.attacks.template import TemplateModel, template_attack
from repro.errors import AttackError, CheckpointError
from repro.obs.metrics import NULL_METRICS
from repro.power.acquisition import TraceSet

#: Number of last-round HD classes (one state byte toggles 0..8 bits).
_N_CLASSES = 9


def _first_disclosure(trace_counts: List[int], ranks: List[int]):
    """First cumulative trace count at which the true byte ranked 0."""
    for count, rank in zip(trace_counts, ranks):
        if rank == 0:
            return count
    return None


def _rank_of(scores: np.ndarray, true_byte: int) -> int:
    order = np.argsort(-scores, kind="stable")
    return int(np.nonzero(order == true_byte)[0][0])


def _curve_snapshot(consumer) -> dict:
    return {
        "true_byte": consumer._true_byte,
        "trace_counts": np.asarray(consumer._trace_counts, dtype=np.int64),
        "ranks": np.asarray(consumer._ranks, dtype=np.int64),
    }


def _curve_restore(consumer, state: dict) -> None:
    if int(state.get("true_byte", -1)) != consumer._true_byte:
        raise CheckpointError(
            f"{consumer.name} snapshot was taken against a different key"
        )
    counts = np.asarray(state.get("trace_counts", ()), dtype=np.int64)
    ranks = np.asarray(state.get("ranks", ()), dtype=np.int64)
    if counts.shape != ranks.shape:
        raise CheckpointError(
            f"{consumer.name} snapshot curve length mismatch"
        )
    consumer._trace_counts = [int(c) for c in counts]
    consumer._ranks = [int(r) for r in ranks]


def _merge_curve_consumer(consumer, other, kind) -> None:
    """The empty-shard-only merge shared by the curve-tracking consumers."""
    if not isinstance(other, kind):
        raise AttackError(f"can only merge another {kind.__name__}")
    if other.n_traces == 0:
        return
    if consumer.n_traces == 0:
        consumer.restore(other.snapshot())
        return
    raise AttackError(
        "rank curves are acquisition-order dependent; merging two "
        "populated shards is unsupported (fold chunks sequentially)"
    )


class TemplateAttackConsumer:
    """Streaming profiled-template attack on one key byte.

    Template log-likelihood scores are additive over traces, so the
    consumer keeps a running ``(256,)`` score vector plus the rank curve
    after every folded chunk.  The :class:`~repro.attacks.TemplateModel`
    is profiled *before* the campaign (on the attacker's clone device)
    and is construction-time configuration, not checkpoint state.
    """

    def __init__(
        self,
        model: TemplateModel,
        key: bytes,
        byte_index: int = 0,
        name: str = "template",
    ):
        self._model = model
        self._byte_index = int(byte_index)
        self._true_byte = int(expand_last_round_key(key)[byte_index])
        self._scores = np.zeros(256, dtype=np.float64)
        self.n_traces = 0
        self._trace_counts: List[int] = []
        self._ranks: List[int] = []
        self._metrics = NULL_METRICS
        self.name = name

    @property
    def byte_index(self) -> int:
        return self._byte_index

    def set_metrics(self, metrics) -> None:
        """Report per-chunk fold cost into an observed campaign's registry."""
        self._metrics = metrics

    def consume(self, chunk: TraceSet) -> None:
        started = time.perf_counter() if self._metrics.enabled else 0.0
        self._scores += template_attack(
            self._model, chunk.traces, chunk.ciphertexts, self._byte_index
        )
        self.n_traces += chunk.n_traces
        rank = _rank_of(self._scores, self._true_byte)
        self._trace_counts.append(self.n_traces)
        self._ranks.append(rank)
        if self._metrics.enabled:
            self._metrics.observe_seconds(
                "attack_fold_seconds",
                time.perf_counter() - started,
                attack=self.name,
            )
            self._metrics.inc(
                "attack_traces_total", chunk.n_traces, attack=self.name
            )
            self._metrics.set_gauge(
                "attack_true_byte_rank", rank, attack=self.name
            )

    def result(self) -> dict:
        if self.n_traces == 0:
            raise AttackError("no traces accumulated")
        best = int(np.argmax(self._scores))
        others = np.delete(self._scores, self._true_byte)
        return {
            "byte_index": self._byte_index,
            "best_guess": best,
            "true_byte_rank": _rank_of(self._scores, self._true_byte),
            "margin": float(self._scores[self._true_byte] - others.max()),
            "trace_counts": list(self._trace_counts),
            "ranks": list(self._ranks),
            "first_disclosure": _first_disclosure(
                self._trace_counts, self._ranks
            ),
        }

    def snapshot(self) -> dict:
        state = _curve_snapshot(self)
        state["n_traces"] = int(self.n_traces)
        state["scores"] = self._scores.copy()
        return state

    def restore(self, state: dict) -> None:
        _curve_restore(self, state)
        scores = np.asarray(state.get("scores", ()), dtype=np.float64)
        if scores.shape != (256,):
            raise CheckpointError("template snapshot needs (256,) scores")
        n = int(state.get("n_traces", -1))
        if n < 0:
            raise CheckpointError("template snapshot n_traces must be >= 0")
        self._scores = scores.copy()
        self.n_traces = n

    def merge(self, other: "TemplateAttackConsumer") -> None:
        _merge_curve_consumer(self, other, TemplateAttackConsumer)


class MlpAttackConsumer:
    """Streaming profiled-MLP attack on one key byte.

    The trained network (:class:`~repro.attacks.mlp.MlpModel`, profiled
    on a clone device before the campaign) condenses each trace to its
    posterior-mean HD, and an :class:`~repro.attacks.IncrementalCpa`
    correlates that single learned feature against every key guess —
    the streaming form of ``mlp_attack(scoring="correlation")``.
    Snapshots carry only the running sums; the weights are
    construction-time configuration.
    """

    def __init__(
        self,
        model: MlpModel,
        key: bytes,
        byte_index: Optional[int] = None,
        name: str = "mlp",
    ):
        self._model = model
        byte_index = (
            model.byte_index if byte_index is None else int(byte_index)
        )
        self._inc = IncrementalCpa(byte_index=byte_index)
        self._true_byte = int(expand_last_round_key(key)[byte_index])
        self._trace_counts: List[int] = []
        self._ranks: List[int] = []
        self._metrics = NULL_METRICS
        self.name = name

    @property
    def byte_index(self) -> int:
        return self._inc.byte_index

    @property
    def n_traces(self) -> int:
        return self._inc.n_traces

    def set_metrics(self, metrics) -> None:
        """Report per-chunk fold cost into an observed campaign's registry."""
        self._metrics = metrics

    def consume(self, chunk: TraceSet) -> None:
        started = time.perf_counter() if self._metrics.enabled else 0.0
        feature = mlp_expected_hd(self._model, chunk.traces)
        self._inc.update(feature[:, None], chunk.ciphertexts)
        rank = self._inc.result().rank_of(self._true_byte)
        self._trace_counts.append(int(self._inc.n_traces))
        self._ranks.append(rank)
        if self._metrics.enabled:
            self._metrics.observe_seconds(
                "attack_fold_seconds",
                time.perf_counter() - started,
                attack=self.name,
            )
            self._metrics.inc(
                "attack_traces_total", chunk.n_traces, attack=self.name
            )
            self._metrics.set_gauge(
                "attack_true_byte_rank", rank, attack=self.name
            )

    def result(self) -> dict:
        outcome = self._inc.result()
        others = np.delete(outcome.peak_corr, self._true_byte)
        return {
            "byte_index": self.byte_index,
            "best_guess": int(outcome.best_guess),
            "true_byte_rank": int(outcome.rank_of(self._true_byte)),
            "peak_corr_max": float(outcome.peak_corr.max()),
            "margin": float(
                outcome.peak_corr[self._true_byte] - others.max()
            ),
            "trace_counts": list(self._trace_counts),
            "ranks": list(self._ranks),
            "first_disclosure": _first_disclosure(
                self._trace_counts, self._ranks
            ),
        }

    def snapshot(self) -> dict:
        state = {f"cpa_{k}": v for k, v in self._inc.snapshot().items()}
        state.update(_curve_snapshot(self))
        return state

    def restore(self, state: dict) -> None:
        _curve_restore(self, state)
        self._inc.restore(
            {k[4:]: v for k, v in state.items() if k.startswith("cpa_")}
        )

    def merge(self, other: "MlpAttackConsumer") -> None:
        _merge_curve_consumer(self, other, MlpAttackConsumer)


class LatticeCpaConsumer:
    """Streaming lattice-alignment CPA on one key byte.

    Each chunk is realigned by its known completion times
    (:func:`~repro.attacks.lattice.lattice_align`) before feeding the
    standard incremental CPA.  ``reference_ns`` must be fixed up front —
    derive it from the frequency *plan*'s full lattice
    (``plan.all_completion_times_ns().max()``) rather than from observed
    traces, so the alignment target never depends on which chunks have
    arrived (that is what keeps worker counts and resume bit-identical).
    """

    def __init__(
        self,
        key: bytes,
        reference_ns: float,
        byte_index: int = 0,
        resolution_ns: Optional[float] = None,
        name: str = "lattice",
    ):
        if not np.isfinite(reference_ns) or reference_ns < 0:
            raise AttackError(
                "reference_ns must be a non-negative finite float"
            )
        self.reference_ns = float(reference_ns)
        self.resolution_ns = (
            float(resolution_ns) if resolution_ns is not None else None
        )
        self._inc = IncrementalCpa(byte_index=byte_index)
        self._true_byte = int(expand_last_round_key(key)[byte_index])
        self._trace_counts: List[int] = []
        self._ranks: List[int] = []
        self._metrics = NULL_METRICS
        self.name = name

    @property
    def byte_index(self) -> int:
        return self._inc.byte_index

    @property
    def n_traces(self) -> int:
        return self._inc.n_traces

    def set_metrics(self, metrics) -> None:
        """Report per-chunk fold cost into an observed campaign's registry."""
        self._metrics = metrics

    def consume(self, chunk: TraceSet) -> None:
        started = time.perf_counter() if self._metrics.enabled else 0.0
        aligned = lattice_align(
            chunk.traces,
            chunk.completion_times_ns,
            chunk.sample_period_ns,
            self.reference_ns,
            self.resolution_ns,
        )
        self._inc.update(aligned, chunk.ciphertexts)
        rank = self._inc.result().rank_of(self._true_byte)
        self._trace_counts.append(int(self._inc.n_traces))
        self._ranks.append(rank)
        if self._metrics.enabled:
            self._metrics.observe_seconds(
                "attack_fold_seconds",
                time.perf_counter() - started,
                attack=self.name,
            )
            self._metrics.inc(
                "attack_traces_total", chunk.n_traces, attack=self.name
            )
            self._metrics.set_gauge(
                "attack_true_byte_rank", rank, attack=self.name
            )

    def result(self) -> dict:
        outcome = self._inc.result()
        others = np.delete(outcome.peak_corr, self._true_byte)
        return {
            "byte_index": self.byte_index,
            "best_guess": int(outcome.best_guess),
            "true_byte_rank": int(outcome.rank_of(self._true_byte)),
            "peak_corr_max": float(outcome.peak_corr.max()),
            "margin": float(
                outcome.peak_corr[self._true_byte] - others.max()
            ),
            "reference_ns": self.reference_ns,
            "trace_counts": list(self._trace_counts),
            "ranks": list(self._ranks),
            "first_disclosure": _first_disclosure(
                self._trace_counts, self._ranks
            ),
        }

    def snapshot(self) -> dict:
        state = {f"cpa_{k}": v for k, v in self._inc.snapshot().items()}
        state.update(_curve_snapshot(self))
        state["reference_ns"] = self.reference_ns
        return state

    def restore(self, state: dict) -> None:
        if float(state.get("reference_ns", -1.0)) != self.reference_ns:
            raise CheckpointError(
                "lattice snapshot was aligned to a different reference "
                f"({state.get('reference_ns')} ns != {self.reference_ns} ns)"
            )
        _curve_restore(self, state)
        self._inc.restore(
            {k[4:]: v for k, v in state.items() if k.startswith("cpa_")}
        )

    def merge(self, other: "LatticeCpaConsumer") -> None:
        if isinstance(other, LatticeCpaConsumer) and (
            other.reference_ns != self.reference_ns
        ):
            raise AttackError(
                "cannot merge lattice consumers with different references"
            )
        _merge_curve_consumer(self, other, LatticeCpaConsumer)


class MiaStreamConsumer:
    """Streaming mutual-information analysis on one key byte.

    Unlike the batch :func:`~repro.attacks.mia.mia_byte` (whose histogram
    edges adapt to the data and therefore depend on which traces were
    seen), the streaming form fixes its value bins at construction —
    ``(bin_lo, bin_hi, n_bins)`` spanning the scope's ADC range by
    default, values outside clipped into the edge bins.  State is a pure
    integer joint histogram ``counts[sample, guess, class, bin]``, so
    merges are exact in *both* directions of the consumer contract
    (this is the only attack consumer with no order-dependent curve).

    ``sample_stride`` thins the tracked samples (every ``stride``-th
    sample) to bound the histogram: the default stride 4 on 256-sample
    traces keeps ~2.4 M int64 cells (~19 MB) per consumer.  The default
    value range ``[0, 100)`` with 16 bins gives ~6-unit bins, matched to
    the synthetic scope's ~2-4 unit per-sample noise — the full ADC range
    ``[0, 400)`` would need ~64 bins for the same resolution.
    """

    def __init__(
        self,
        key: bytes,
        byte_index: int = 0,
        bin_lo: float = 0.0,
        bin_hi: float = 100.0,
        n_bins: int = 16,
        sample_stride: int = 4,
        name: str = "mia",
    ):
        if not np.isfinite(bin_lo) or not np.isfinite(bin_hi) or bin_hi <= bin_lo:
            raise AttackError("need finite bin_lo < bin_hi")
        if n_bins < 2:
            raise AttackError("n_bins must be >= 2")
        if sample_stride < 1:
            raise AttackError("sample_stride must be >= 1")
        self._byte_index = int(byte_index)
        self._true_byte = int(expand_last_round_key(key)[byte_index])
        self.bin_lo = float(bin_lo)
        self.bin_hi = float(bin_hi)
        self.n_bins = int(n_bins)
        self.sample_stride = int(sample_stride)
        self.n_traces = 0
        self._counts: Optional[np.ndarray] = None  # (n_sel, 256, 9, bins)
        self._metrics = NULL_METRICS
        self.name = name

    @property
    def byte_index(self) -> int:
        return self._byte_index

    def set_metrics(self, metrics) -> None:
        """Report per-chunk fold cost into an observed campaign's registry."""
        self._metrics = metrics

    def _quantize(self, values: np.ndarray) -> np.ndarray:
        scaled = (values - self.bin_lo) / (self.bin_hi - self.bin_lo)
        bins = np.floor(scaled * self.n_bins).astype(np.int64)
        return np.clip(bins, 0, self.n_bins - 1)

    def consume(self, chunk: TraceSet) -> None:
        started = time.perf_counter() if self._metrics.enabled else 0.0
        traces = np.asarray(chunk.traces, dtype=np.float64)
        selected = traces[:, :: self.sample_stride]
        n, n_sel = selected.shape
        if self._counts is None:
            self._counts = np.zeros(
                (n_sel, 256, _N_CLASSES, self.n_bins), dtype=np.int64
            )
        elif self._counts.shape[0] != n_sel:
            raise AttackError(
                f"chunk has {n_sel} strided samples, accumulator has "
                f"{self._counts.shape[0]} — mixed trace lengths?"
            )
        bins = self._quantize(selected)  # (n, n_sel)
        hd = last_round_hd_predictions(
            chunk.ciphertexts, self._byte_index
        ).astype(np.int64)  # (n, 256)
        # Joint histogram per strided sample: flatten (guess, class, bin)
        # into one bincount per sample — one O(n * 256) pass each.
        guess_offset = (
            np.arange(256, dtype=np.int64)[None, :]
            * _N_CLASSES
            * self.n_bins
        )
        class_bin = hd * self.n_bins  # (n, 256)
        size = 256 * _N_CLASSES * self.n_bins
        for si in range(n_sel):
            flat = class_bin + bins[:, si][:, None] + guess_offset
            self._counts[si] += np.bincount(
                flat.ravel(), minlength=size
            ).reshape(256, _N_CLASSES, self.n_bins)
        self.n_traces += n
        if self._metrics.enabled:
            self._metrics.observe_seconds(
                "attack_fold_seconds",
                time.perf_counter() - started,
                attack=self.name,
            )
            self._metrics.inc(
                "attack_traces_total", chunk.n_traces, attack=self.name
            )

    def _mutual_information(self) -> np.ndarray:
        """MI in bits per (strided sample, guess), shape ``(n_sel, 256)``."""
        joint = self._counts.astype(np.float64) / self.n_traces
        p_class = joint.sum(axis=3, keepdims=True)
        p_bin = joint.sum(axis=2, keepdims=True)
        denom = p_class * p_bin
        # Where joint == 0 the ratio is pinned to 1, so log2 is 0 and the
        # term drops out — no masked log needed.
        ratio = np.divide(
            joint, denom, out=np.ones_like(joint), where=joint > 0
        )
        return (joint * np.log2(ratio)).sum(axis=(2, 3))

    def result(self) -> dict:
        if self.n_traces == 0 or self._counts is None:
            raise AttackError("no traces accumulated")
        mi = self._mutual_information()
        scores = mi.max(axis=0)  # (256,) best MI over samples per guess
        best = int(np.argmax(scores))
        others = np.delete(scores, self._true_byte)
        return {
            "byte_index": self._byte_index,
            "best_guess": best,
            "true_byte_rank": _rank_of(scores, self._true_byte),
            "max_mi_bits": float(scores.max()),
            "margin": float(scores[self._true_byte] - others.max()),
            "n_traces": int(self.n_traces),
        }

    def snapshot(self) -> dict:
        state = {
            "true_byte": self._true_byte,
            "n_traces": int(self.n_traces),
            "bin_lo": self.bin_lo,
            "bin_hi": self.bin_hi,
            "n_bins": self.n_bins,
            "sample_stride": self.sample_stride,
        }
        if self._counts is not None:
            state["counts"] = self._counts.copy()
        return state

    def restore(self, state: dict) -> None:
        if int(state.get("true_byte", -1)) != self._true_byte:
            raise CheckpointError(
                "mia snapshot was taken against a different key"
            )
        for field in ("bin_lo", "bin_hi", "n_bins", "sample_stride"):
            if float(state.get(field, np.nan)) != float(getattr(self, field)):
                raise CheckpointError(
                    f"mia snapshot {field} does not match the consumer"
                )
        n = int(state.get("n_traces", -1))
        if n < 0:
            raise CheckpointError("mia snapshot n_traces must be >= 0")
        if "counts" in state:
            counts = np.asarray(state["counts"], dtype=np.int64)
            if counts.ndim != 4 or counts.shape[1:] != (
                256,
                _N_CLASSES,
                self.n_bins,
            ):
                raise CheckpointError("mia snapshot counts have a bad shape")
            self._counts = counts.copy()
        else:
            self._counts = None
        self.n_traces = n

    def merge(self, other: "MiaStreamConsumer") -> None:
        """Add a disjoint shard's joint histogram (exact integer counts)."""
        if not isinstance(other, MiaStreamConsumer):
            raise AttackError("can only merge another MiaStreamConsumer")
        if (
            other.bin_lo != self.bin_lo
            or other.bin_hi != self.bin_hi
            or other.n_bins != self.n_bins
            or other.sample_stride != self.sample_stride
        ):
            raise AttackError(
                "cannot merge MIA consumers with different binnings"
            )
        if other._counts is None:
            return
        if self._counts is None:
            self._counts = other._counts.copy()
        elif self._counts.shape != other._counts.shape:
            raise AttackError("cannot merge MIA histograms of mixed shapes")
        else:
            self._counts += other._counts
        self.n_traces += other.n_traces


def _replica_keep_mask(
    indices: np.ndarray, replica: int, seed: int, keep_fraction: float
) -> np.ndarray:
    """Deterministic Bernoulli thinning by absolute trace index.

    A SplitMix64-style counter hash of ``(seed, replica, index)`` maps
    each trace to a uniform in [0, 1); a trace joins the replica when it
    falls below ``keep_fraction``.  Pure function of the inputs — chunk
    boundaries, worker counts and resume points cannot change which
    traces a replica sees.
    """
    x = np.asarray(indices, dtype=np.uint64)
    x = x + np.uint64((seed * 0x9E3779B9 + replica * 0x85EBCA6B) & 0xFFFFFFFFFFFFFFFF)
    x = x + np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    x = x ^ (x >> np.uint64(31))
    uniform = (x >> np.uint64(11)).astype(np.float64) * 2.0**-53
    return uniform < keep_fraction


class SuccessRateConsumer:
    """Streaming success-rate-vs-traces curve with Wilson bands.

    The batch protocol (``success_rate_curve``) re-attacks random
    subsets at each budget, which needs the whole campaign in memory.
    The streaming form runs ``n_replicas`` parallel CPA attackers, each
    fed an independent deterministic Bernoulli thinning (rate
    ``keep_fraction``) of the trace stream; after every chunk, the
    fraction of replicas at rank 0 estimates SR at the current budget,
    and :func:`~repro.attacks.success_rate.wilson_interval` turns the
    replica count into a confidence band.  One pass, bounded memory,
    and — because the thinning is a counter hash of ``(seed, replica,
    absolute index)`` — byte-identical across worker counts and resume.
    """

    def __init__(
        self,
        key: bytes,
        byte_index: int = 0,
        n_replicas: int = 8,
        keep_fraction: float = 0.5,
        seed: int = 0,
        name: str = "success_rate",
    ):
        if n_replicas < 1:
            raise AttackError("n_replicas must be >= 1")
        if not 0.0 < keep_fraction <= 1.0:
            raise AttackError("keep_fraction must be in (0, 1]")
        self._byte_index = int(byte_index)
        self._true_byte = int(expand_last_round_key(key)[byte_index])
        self.n_replicas = int(n_replicas)
        self.keep_fraction = float(keep_fraction)
        self.seed = int(seed)
        self._replicas = [
            IncrementalCpa(byte_index=byte_index) for _ in range(n_replicas)
        ]
        self.n_traces = 0  # traces *offered* (the SR curve's x axis)
        self._trace_counts: List[int] = []
        self._successes: List[int] = []
        self._metrics = NULL_METRICS
        self.name = name

    @property
    def byte_index(self) -> int:
        return self._byte_index

    def set_metrics(self, metrics) -> None:
        """Report per-chunk fold cost into an observed campaign's registry."""
        self._metrics = metrics

    def consume(self, chunk: TraceSet) -> None:
        started = time.perf_counter() if self._metrics.enabled else 0.0
        n = chunk.n_traces
        indices = np.arange(self.n_traces, self.n_traces + n, dtype=np.int64)
        for replica, inc in enumerate(self._replicas):
            mask = _replica_keep_mask(
                indices, replica, self.seed, self.keep_fraction
            )
            if mask.any():
                inc.update(chunk.traces[mask], chunk.ciphertexts[mask])
        self.n_traces += n
        successes = sum(
            1
            for inc in self._replicas
            if inc.n_traces > 0
            and inc.result().rank_of(self._true_byte) == 0
        )
        self._trace_counts.append(self.n_traces)
        self._successes.append(successes)
        if self._metrics.enabled:
            self._metrics.observe_seconds(
                "attack_fold_seconds",
                time.perf_counter() - started,
                attack=self.name,
            )
            self._metrics.inc(
                "attack_traces_total", n, attack=self.name
            )
            self._metrics.set_gauge(
                "attack_success_rate",
                successes / self.n_replicas,
                attack=self.name,
            )

    def result(self) -> dict:
        if not self._trace_counts:
            raise AttackError("no traces accumulated")
        successes = np.asarray(self._successes, dtype=np.float64)
        rates = successes / self.n_replicas
        bands = wilson_interval(successes, self.n_replicas)
        disclosed = None
        for count, rate in zip(self._trace_counts, rates):
            if rate >= 0.8:
                disclosed = count
                break
        return {
            "byte_index": self._byte_index,
            "n_replicas": self.n_replicas,
            "keep_fraction": self.keep_fraction,
            "trace_counts": list(self._trace_counts),
            "success_rates": [float(r) for r in rates],
            "wilson_low": [float(lo) for lo in bands[:, 0]],
            "wilson_high": [float(hi) for hi in bands[:, 1]],
            "final_success_rate": float(rates[-1]),
            "traces_to_disclosure": disclosed,
        }

    def snapshot(self) -> dict:
        state = {
            "true_byte": self._true_byte,
            "n_replicas": self.n_replicas,
            "keep_fraction": self.keep_fraction,
            "seed": self.seed,
            "n_traces": int(self.n_traces),
            "trace_counts": np.asarray(self._trace_counts, dtype=np.int64),
            "successes": np.asarray(self._successes, dtype=np.int64),
        }
        for replica, inc in enumerate(self._replicas):
            for k, v in inc.snapshot().items():
                state[f"r{replica}_{k}"] = v
        return state

    def restore(self, state: dict) -> None:
        if int(state.get("true_byte", -1)) != self._true_byte:
            raise CheckpointError(
                "success-rate snapshot was taken against a different key"
            )
        if (
            int(state.get("n_replicas", -1)) != self.n_replicas
            or float(state.get("keep_fraction", -1.0)) != self.keep_fraction
            or int(state.get("seed", ~self.seed)) != self.seed
        ):
            raise CheckpointError(
                "success-rate snapshot replica configuration does not "
                "match the consumer"
            )
        counts = np.asarray(state.get("trace_counts", ()), dtype=np.int64)
        successes = np.asarray(state.get("successes", ()), dtype=np.int64)
        if counts.shape != successes.shape:
            raise CheckpointError(
                "success-rate snapshot curve length mismatch"
            )
        n = int(state.get("n_traces", -1))
        if n < 0:
            raise CheckpointError(
                "success-rate snapshot n_traces must be >= 0"
            )
        for replica, inc in enumerate(self._replicas):
            prefix = f"r{replica}_"
            inc.restore(
                {
                    k[len(prefix):]: v
                    for k, v in state.items()
                    if k.startswith(prefix)
                }
            )
        self.n_traces = n
        self._trace_counts = [int(c) for c in counts]
        self._successes = [int(s) for s in successes]

    def merge(self, other: "SuccessRateConsumer") -> None:
        if isinstance(other, SuccessRateConsumer) and (
            other.n_replicas != self.n_replicas
            or other.keep_fraction != self.keep_fraction
            or other.seed != self.seed
        ):
            raise AttackError(
                "cannot merge success-rate consumers with different "
                "replica configurations"
            )
        if not isinstance(other, SuccessRateConsumer):
            raise AttackError("can only merge another SuccessRateConsumer")
        if other.n_traces == 0:
            return
        if self.n_traces == 0:
            self.restore(other.snapshot())
            return
        raise AttackError(
            "success-rate curves are acquisition-order dependent; merging "
            "two populated shards is unsupported (fold chunks sequentially)"
        )
