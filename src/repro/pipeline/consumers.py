"""Incremental trace consumers: the analysis side of the pipeline.

A consumer is anything with a ``name``, a ``consume(chunk)`` that folds a
:class:`~repro.power.acquisition.TraceSet` chunk into running state, and a
``result()`` that reports the analysis so far.  The engine feeds every
consumer each chunk exactly once, in acquisition order, then collects
``result()`` into the :class:`~repro.pipeline.engine.PipelineReport` —
so a 4M-trace campaign carries CPA, TVLA and completion-time statistics
simultaneously while only ever holding one chunk of traces.

The three built-ins wrap the library's existing streaming accumulators:

* :class:`CpaStreamConsumer` — :class:`~repro.attacks.IncrementalCpa`
  (known-ciphertext last-round CPA, the paper's Sec. 6 attack).
* :class:`TvlaStreamConsumer` —
  :class:`~repro.leakage_assessment.IncrementalTvla` over the pipeline's
  interleaved fixed/random rows (Fig. 6 methodology).
* :class:`CompletionTimeConsumer` — a streaming histogram of encryption
  completion times (Fig. 3 statistics without storing per-trace times).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Optional, Protocol, runtime_checkable

import numpy as np

from repro.attacks.cpa import CpaByteResult, CpaResult, PredictionModel
from repro.attacks.incremental import IncrementalCpa, IncrementalCpaBank
from repro.attacks.models import last_round_hd_predictions
from repro.errors import AttackError, CheckpointError, ConfigurationError
from repro.leakage_assessment.tvla import IncrementalTvla, TvlaResult
from repro.power.acquisition import TraceSet


@runtime_checkable
class TraceConsumer(Protocol):
    """The pipeline's analysis plug-in contract.

    ``snapshot``/``restore`` are the checkpoint half of the contract:
    ``snapshot()`` returns a dict of JSON-safe scalars and numpy arrays
    capturing the accumulator exactly, and ``restore(state)`` overwrites
    a freshly-constructed consumer with it such that continuing the fold
    is bit-identical to never having stopped.  ``merge`` is the
    shard-parallel half: folding a consumer built from a disjoint shard of
    chunks into this one must equal having consumed those chunks here, and
    merging a fresh (zero-trace) consumer must be an exact no-op.  The
    ``repro.verify.lint`` suite enforces that every consumer in ``src/``
    implements all three.
    """

    name: str

    def consume(self, chunk: TraceSet) -> None:
        """Fold one chunk (called once per chunk, in acquisition order)."""
        ...

    def result(self):
        """The analysis outcome accumulated so far."""
        ...

    def snapshot(self) -> dict:
        """Serializable exact state for campaign checkpoints."""
        ...

    def restore(self, state: dict) -> None:
        """Overwrite this consumer with a :meth:`snapshot` state."""
        ...

    def merge(self, other: "TraceConsumer") -> None:
        """Fold another consumer's accumulated state into this one."""
        ...


class CpaStreamConsumer:
    """Streaming last-round CPA on one key byte."""

    def __init__(
        self,
        byte_index: int = 0,
        model: PredictionModel = last_round_hd_predictions,
        name: Optional[str] = None,
    ):
        self._inc = IncrementalCpa(byte_index=byte_index, model=model)
        self.name = name if name is not None else f"cpa[{byte_index}]"

    @property
    def byte_index(self) -> int:
        return self._inc.byte_index

    @property
    def n_traces(self) -> int:
        return self._inc.n_traces

    def set_metrics(self, metrics) -> None:
        """Report per-chunk fold cost into an observed campaign's registry."""
        self._inc.set_metrics(metrics)

    def consume(self, chunk: TraceSet) -> None:
        self._inc.update(chunk.traces, chunk.ciphertexts)

    def result(self) -> CpaByteResult:
        return self._inc.result()

    def snapshot(self) -> dict:
        return self._inc.snapshot()

    def restore(self, state: dict) -> None:
        self._inc.restore(state)

    def merge(self, other: "CpaStreamConsumer") -> None:
        """Fold a disjoint shard's accumulator in (exact additive sums)."""
        if not isinstance(other, CpaStreamConsumer):
            raise AttackError("can only merge another CpaStreamConsumer")
        self._inc.merge(other._inc)


class CpaBankConsumer:
    """Streaming last-round CPA on several key bytes at once.

    One :class:`~repro.attacks.IncrementalCpaBank` replaces 16 independent
    :class:`CpaStreamConsumer` plug-ins: the per-chunk trace sums are
    computed once instead of per byte and all guesses share one GEMM, so a
    full-key streaming attack costs far less per chunk (see
    ``docs/performance.md``).
    """

    def __init__(
        self,
        byte_indices: "tuple[int, ...]" = tuple(range(16)),
        model: PredictionModel = last_round_hd_predictions,
        name: str = "cpa_bank",
        engine: str = "fast",
    ):
        self._bank = IncrementalCpaBank(
            byte_indices=byte_indices, model=model, engine=engine
        )
        self.name = name

    @property
    def byte_indices(self) -> "tuple[int, ...]":
        return self._bank.byte_indices

    @property
    def n_traces(self) -> int:
        return self._bank.n_traces

    def set_metrics(self, metrics) -> None:
        """Report per-chunk fold cost into an observed campaign's registry."""
        self._bank.set_metrics(metrics)

    def consume(self, chunk: TraceSet) -> None:
        self._bank.update(chunk.traces, chunk.ciphertexts)

    def result(self) -> CpaResult:
        return self._bank.result()

    def snapshot(self) -> dict:
        return self._bank.snapshot()

    def restore(self, state: dict) -> None:
        self._bank.restore(state)

    def merge(self, other: "CpaBankConsumer") -> None:
        """Fold a disjoint shard's bank in (exact additive sums)."""
        if not isinstance(other, CpaBankConsumer):
            raise AttackError("can only merge another CpaBankConsumer")
        self._bank.merge(other._bank)


class TvlaStreamConsumer:
    """Streaming fixed-vs-random Welch t over interleaved chunks.

    Expects chunks produced by a fixed-vs-random campaign
    (``CampaignSpec.fixed_plaintext`` set): even rows fixed, odd rows
    random, flagged by ``metadata["tvla_interleaved"]``.  Feeding it a
    plain CPA chunk is a hard error rather than a silently wrong t-curve.
    """

    def __init__(self, exclude_prefix_samples: int = 0, name: str = "tvla"):
        self._inc = IncrementalTvla(exclude_prefix_samples=exclude_prefix_samples)
        self.name = name

    def consume(self, chunk: TraceSet) -> None:
        if not chunk.metadata.get("tvla_interleaved"):
            raise AttackError(
                "TvlaStreamConsumer needs interleaved fixed-vs-random chunks "
                "(run the campaign with a fixed_plaintext)"
            )
        self._inc.update_fixed(chunk.traces[0::2])
        self._inc.update_random(chunk.traces[1::2])

    def result(self) -> TvlaResult:
        return self._inc.result()

    def snapshot(self) -> dict:
        return self._inc.snapshot()

    def restore(self, state: dict) -> None:
        self._inc.restore(state)

    def merge(self, other: "TvlaStreamConsumer") -> None:
        """Fold a disjoint shard's populations in (Chan pooled moments)."""
        if not isinstance(other, TvlaStreamConsumer):
            raise AttackError("can only merge another TvlaStreamConsumer")
        self._inc.merge(other._inc)


@dataclass
class CompletionTimeStats:
    """Streaming summary of per-encryption completion times.

    ``counts`` maps quantized completion time (ns) to occurrences — the
    paper's Fig. 3 histograms reduced to their sufficient statistic.
    """

    counts: Dict[float, int]
    resolution_ns: float

    @property
    def n_encryptions(self) -> int:
        return sum(self.counts.values())

    @property
    def distinct_times(self) -> int:
        return len(self.counts)

    @property
    def min_ns(self) -> float:
        return min(self.counts)

    @property
    def max_ns(self) -> float:
        return max(self.counts)

    @property
    def max_identical(self) -> int:
        """Largest single bucket — the paper's misalignment-resistance metric."""
        return max(self.counts.values())

    def histogram(self) -> "tuple[np.ndarray, np.ndarray]":
        """(times_ns, counts) sorted by time, for plotting."""
        times = np.array(sorted(self.counts))
        return times, np.array([self.counts[t] for t in times])


class CompletionTimeConsumer:
    """Histogram completion times chunk by chunk, in O(distinct times)."""

    def __init__(self, resolution_ns: float = 0.01, name: str = "completion"):
        if resolution_ns <= 0:
            raise ConfigurationError("resolution_ns must be positive")
        self.resolution_ns = float(resolution_ns)
        self.name = name
        self._counts: Counter = Counter()

    def consume(self, chunk: TraceSet) -> None:
        quantized = np.round(
            np.asarray(chunk.completion_times_ns, dtype=np.float64)
            / self.resolution_ns
        )
        values, counts = np.unique(quantized, return_counts=True)
        for value, count in zip(values, counts):
            self._counts[float(value) * self.resolution_ns] += int(count)

    def result(self) -> CompletionTimeStats:
        if not self._counts:
            raise AttackError("no completion times accumulated")
        return CompletionTimeStats(
            counts=dict(self._counts), resolution_ns=self.resolution_ns
        )

    def snapshot(self) -> dict:
        times = np.array(sorted(self._counts), dtype=np.float64)
        counts = np.array([self._counts[t] for t in times], dtype=np.int64)
        return {
            "resolution_ns": self.resolution_ns,
            "times": times,
            "counts": counts,
        }

    def restore(self, state: dict) -> None:
        if float(state.get("resolution_ns", -1.0)) != self.resolution_ns:
            raise CheckpointError(
                f"snapshot resolution {state.get('resolution_ns')} ns does "
                f"not match consumer resolution {self.resolution_ns} ns"
            )
        times = np.asarray(state.get("times", ()), dtype=np.float64)
        counts = np.asarray(state.get("counts", ()), dtype=np.int64)
        if times.shape != counts.shape:
            raise CheckpointError("snapshot times/counts length mismatch")
        self._counts = Counter(
            {float(t): int(c) for t, c in zip(times, counts)}
        )

    def merge(self, other: "CompletionTimeConsumer") -> None:
        """Add a disjoint shard's histogram (exact integer counts)."""
        if not isinstance(other, CompletionTimeConsumer):
            raise AttackError("can only merge another CompletionTimeConsumer")
        if other.resolution_ns != self.resolution_ns:
            raise ConfigurationError(
                f"cannot merge histograms at {other.resolution_ns} ns into "
                f"{self.resolution_ns} ns resolution"
            )
        self._counts.update(other._counts)
