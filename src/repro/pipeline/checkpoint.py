"""Atomic campaign checkpoints: resume a killed run bit-identically.

A checkpoint is everything needed to continue a streaming campaign after
the process dies: the campaign identity (spec, master seed, chunk size,
trace budget), how many chunks have been folded, and the exact state of
every consumer's incremental accumulator.  Because chunk content is a
pure function of ``(spec, seed, chunk layout)`` (see
:mod:`repro.pipeline.engine`), a resumed campaign re-derives the
remaining chunks from the same ``SeedSequence`` tree and folds them onto
the restored sums — producing *bit-identical* consumer results and store
bytes to a run that was never interrupted (asserted by
``tests/pipeline/test_fault_tolerance.py``).

On disk a checkpoint is one ``.npz``: a ``__meta__`` entry holding a
JSON document (format version, campaign identity, chunks done, and each
consumer's scalar state) plus one array entry per consumer array field,
namespaced ``<consumer name>::<field>``.  Writes go to a temp file then
``os.replace`` — a crash mid-checkpoint leaves the previous checkpoint
intact, never a torn file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Sequence, Union

import numpy as np

from repro.errors import CheckpointError, ConfigurationError

# The canonical spec codecs live next to CampaignSpec; re-exported here
# because checkpoint files are where they first appeared publicly.
from repro.pipeline.spec import (  # noqa: F401  (re-export)
    CampaignSpec,
    spec_from_dict,
    spec_to_dict,
)

CHECKPOINT_FORMAT_VERSION = 1

_META_KEY = "__meta__"
_SEP = "::"


def _split_state(state: dict) -> "tuple[dict, dict]":
    """Partition a consumer state into (JSON-safe scalars, numpy arrays)."""
    scalars, arrays = {}, {}
    for key, value in state.items():
        if _SEP in key:
            raise ConfigurationError(f"state field {key!r} may not contain {_SEP!r}")
        if isinstance(value, np.ndarray):
            arrays[key] = value
        elif isinstance(value, (np.integer, np.floating)):
            scalars[key] = value.item()
        else:
            scalars[key] = value
    return scalars, arrays


@dataclass
class CampaignCheckpoint:
    """A resumable snapshot of a streaming campaign after *k* chunks.

    Attributes
    ----------
    seed / chunk_size / n_traces / spec_fields:
        The campaign identity; :meth:`spec` rebuilds the
        :class:`CampaignSpec`.  A checkpoint can only resume the exact
        campaign that wrote it — :meth:`validate_matches` enforces this.
    chunks_done:
        Chunks folded into the consumer states below (the resume point).
    consumer_states:
        ``name -> snapshot()`` dict for every consumer, exactly as the
        consumer's ``restore()`` expects it back.
    """

    seed: int
    chunk_size: int
    n_traces: int
    chunks_done: int
    spec_fields: dict
    consumer_states: Dict[str, dict]

    # -- construction --------------------------------------------------

    @classmethod
    def capture(
        cls,
        spec: CampaignSpec,
        seed: int,
        chunk_size: int,
        n_traces: int,
        chunks_done: int,
        consumers: Sequence,
    ) -> "CampaignCheckpoint":
        """Snapshot live campaign state (consumers must offer snapshot())."""
        states: Dict[str, dict] = {}
        for consumer in consumers:
            if consumer.name in states:
                raise ConfigurationError(
                    f"duplicate consumer name {consumer.name!r}; checkpointed "
                    "campaigns need unique names"
                )
            if not callable(getattr(consumer, "snapshot", None)):
                raise ConfigurationError(
                    f"consumer {consumer.name!r} has no snapshot(); it cannot "
                    "be checkpointed"
                )
            states[consumer.name] = consumer.snapshot()
        return cls(
            seed=int(seed),
            chunk_size=int(chunk_size),
            n_traces=int(n_traces),
            chunks_done=int(chunks_done),
            spec_fields=spec_to_dict(spec),
            consumer_states=states,
        )

    # -- persistence ---------------------------------------------------

    def save(self, path: Union[str, Path]) -> Path:
        """Atomically write the checkpoint ``.npz`` (temp file + replace)."""
        path = Path(path)
        meta = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "seed": self.seed,
            "chunk_size": self.chunk_size,
            "n_traces": self.n_traces,
            "chunks_done": self.chunks_done,
            "spec": self.spec_fields,
            "consumers": {},
        }
        entries: Dict[str, np.ndarray] = {}
        for name, state in self.consumer_states.items():
            scalars, arrays = _split_state(state)
            meta["consumers"][name] = {
                "scalars": scalars,
                "arrays": sorted(arrays),
            }
            for field, array in arrays.items():
                entries[f"{name}{_SEP}{field}"] = array
        entries[_META_KEY] = np.array(json.dumps(meta, sort_keys=True))
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            np.savez(handle, **entries)
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignCheckpoint":
        """Read and validate a checkpoint written by :meth:`save`."""
        path = Path(path)
        if not path.is_file():
            raise CheckpointError(f"no checkpoint at {path}")
        try:
            with np.load(path, allow_pickle=False) as archive:
                if _META_KEY not in archive.files:
                    raise CheckpointError(
                        f"{path} is not a campaign checkpoint (no {_META_KEY})"
                    )
                meta = json.loads(str(archive[_META_KEY]))
                arrays = {
                    name: np.array(archive[name])
                    for name in archive.files
                    if name != _META_KEY
                }
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"corrupt checkpoint at {path}: {exc}") from exc
        if meta.get("format_version", 0) > CHECKPOINT_FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint {path} uses format "
                f"v{meta.get('format_version')}; this library reads up to "
                f"v{CHECKPOINT_FORMAT_VERSION}"
            )
        for required in ("seed", "chunk_size", "n_traces", "chunks_done", "spec"):
            if required not in meta:
                raise CheckpointError(f"checkpoint {path} is missing {required!r}")
        states: Dict[str, dict] = {}
        for name, layout in meta.get("consumers", {}).items():
            state = dict(layout.get("scalars", {}))
            for field in layout.get("arrays", []):
                entry = f"{name}{_SEP}{field}"
                if entry not in arrays:
                    raise CheckpointError(
                        f"checkpoint {path} is missing array {entry!r}"
                    )
                state[field] = arrays[entry]
            states[name] = state
        return cls(
            seed=int(meta["seed"]),
            chunk_size=int(meta["chunk_size"]),
            n_traces=int(meta["n_traces"]),
            chunks_done=int(meta["chunks_done"]),
            spec_fields=dict(meta["spec"]),
            consumer_states=states,
        )

    # -- use -----------------------------------------------------------

    def spec(self) -> CampaignSpec:
        return spec_from_dict(self.spec_fields)

    def validate_matches(
        self, spec: CampaignSpec, seed: int, chunk_size: int
    ) -> None:
        """Refuse to resume a different campaign than the one snapshotted."""
        # Compare through the codec so checkpoints written before a spec
        # field existed still match a spec carrying that field's default.
        if spec_to_dict(spec) != spec_to_dict(self.spec()):
            raise CheckpointError(
                "checkpoint was written by a different campaign spec "
                f"({self.spec_fields.get('target')!r}, digest "
                f"{self.spec().spec_digest()[:12]}; requested "
                f"{spec.target!r}, digest {spec.spec_digest()[:12]})"
            )
        if int(seed) != self.seed or int(chunk_size) != self.chunk_size:
            raise CheckpointError(
                f"checkpoint is for seed {self.seed} / chunk_size "
                f"{self.chunk_size}, not seed {seed} / chunk_size {chunk_size}"
            )

    def restore_consumers(self, consumers: Sequence) -> None:
        """Restore ``consumers`` (matched by name) from the saved states."""
        provided = {c.name for c in consumers}
        saved = set(self.consumer_states)
        if provided != saved:
            raise CheckpointError(
                f"consumer names {sorted(provided)} do not match the "
                f"checkpoint's {sorted(saved)}"
            )
        for consumer in consumers:
            if not callable(getattr(consumer, "restore", None)):
                raise ConfigurationError(
                    f"consumer {consumer.name!r} has no restore(); it cannot "
                    "resume from a checkpoint"
                )
            consumer.restore(self.consumer_states[consumer.name])
