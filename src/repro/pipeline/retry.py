"""Bounded, deterministic retry for per-chunk acquisition.

Long campaigns hit transient faults — a worker OOM-killed, a flaky
storage mount, an injected test fault — and a four-million-trace run must
not die on the first one.  :class:`RetryPolicy` bounds the attempts per
chunk and spaces them with exponential backoff whose jitter is derived
*deterministically* from the chunk's :class:`numpy.random.SeedSequence`:
two runs of the same campaign retry at the same instants, so recovery
behaviour is reproducible and testable without wall-clock flakiness.

Retries re-run the chunk from the same spawned seed children, so a chunk
that succeeds on attempt *n* produces bit-identical traces to one that
succeeds on attempt 1 — the engine's determinism contract survives
recovery (asserted by ``tests/pipeline/test_fault_tolerance.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

#: Namespace mixed into the spawn key so jitter draws can never collide
#: with the device/data streams spawned from the same chunk seed.
_JITTER_KEY = 0x52455452  # "RETR"


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to attempt a chunk, and how long to wait between.

    Attributes
    ----------
    max_attempts:
        Total attempts per chunk (1 = no retry).
    backoff_base_s:
        Sleep before attempt 2; doubles (``backoff_factor``) per further
        attempt, capped at ``backoff_max_s``.  ``0.0`` disables sleeping,
        which is what the test suite uses.
    backoff_factor / backoff_max_s:
        Exponential growth rate and ceiling of the backoff.
    jitter_fraction:
        ±half this fraction of spread around each delay, drawn
        deterministically from the chunk seed (decorrelates workers that
        fail simultaneously without sacrificing reproducibility).
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ConfigurationError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigurationError("jitter_fraction must be in [0, 1]")

    def backoff_seconds(
        self,
        attempt: int,
        chunk_seed: Optional[np.random.SeedSequence] = None,
        metrics=None,
    ) -> float:
        """Delay before retrying after failed ``attempt`` (1-based).

        Pure function of ``(policy, attempt, chunk seed)`` — no global
        RNG, no wall clock — so a replayed campaign backs off identically.
        ``metrics`` (a :class:`~repro.obs.MetricsRegistry`, optional)
        records each computed wait without influencing it.
        """
        if attempt < 1:
            raise ConfigurationError("attempt is 1-based")
        delay = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        delay = min(delay, self.backoff_max_s)
        if delay > 0.0 and self.jitter_fraction != 0.0 and chunk_seed is not None:
            draw_seq = np.random.SeedSequence(
                entropy=chunk_seed.entropy,
                spawn_key=(*chunk_seed.spawn_key, _JITTER_KEY, attempt),
            )
            unit = draw_seq.generate_state(1, np.uint64)[0] / float(2**64)
            delay = delay * (1.0 + self.jitter_fraction * (unit - 0.5))
        if metrics is not None:
            metrics.inc("retry_waits_total")
            metrics.observe("retry_backoff_seconds", delay)
        return delay
