"""Shared-memory chunk transport: trace blocks without the result pipe.

The pool's default transport pickles every finished chunk through the
result pipe: serialize in the worker, two kernel copies through a pipe
sized far below a chunk, deserialize in the parent.  Beyond the copies,
the pipe *couples worker liveness to parent progress* — a worker
mid-write of a multi-megabyte result blocks until the parent reads,
which is the deadlock that forced the SIGKILL teardown documented on
:func:`repro.pipeline.engine._abandon_pool`.

This module moves the arrays through POSIX shared memory instead.  Each
worker owns a small **ring** of reusable segments
(``{prefix}-w{worker}-s{slot}``); publishing a chunk packs its arrays
into the next free slot and ships only a tiny picklable
:class:`ShmChunkHandle` (segment name + dtype/shape/offset per field)
through the pipe.  The parent attaches, copies the arrays out, closes
its mapping, and releases that worker's slot semaphore.  Flow control is
the per-worker semaphore initialised to the ring depth: a worker more
than :data:`RING_SLOTS` chunks ahead of the parent blocks in
``publish`` — bounded memory, and deadlock-free because the parent folds
chunks in index order and each worker's chunk indices are increasing, so
the slot a worker waits for is always the next one the parent frees.

Determinism: the transport copies bytes; it never touches chunk RNG
streams, fold order, or persisted store bytes.  Results are therefore
bit-identical across {pickle, shm} × any worker count (asserted by
``tests/pipeline/test_transport.py``).

Cleanup is explicit: the engine calls
:meth:`ChunkTransportRing.unlink_all` — which sweeps every possible ring
name — on **every** exit path: normal completion, pool death/degrade,
timeout, and KeyboardInterrupt.  The whole process tree shares one
:mod:`multiprocessing.resource_tracker`, whose cache is a *set* of
names, so the bookkeeping balances by construction: creates and
attaches register a name (idempotently), and only ``unlink()`` — called
exactly once per live name, by whichever process retires it —
unregisters.  No manual (un)tracking, no double-unlink tracebacks, no
leak warnings at exit; and should the parent die before its sweep, the
tracker itself unlinks whatever remains.  Only SIGKILLing the entire
tree can truly leak segments; they are bounded by ``workers ×
RING_SLOTS × chunk bytes`` and carry the parent PID in their name for
manual sweeping.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Tuple

import numpy as np

from repro.errors import AcquisitionError
from repro.power.acquisition import TraceSet

try:  # pragma: no cover - absent only on exotic builds
    from multiprocessing import shared_memory
except ImportError:  # pragma: no cover
    shared_memory = None  # type: ignore[assignment]

#: Reusable segments per worker.  Two lets a worker synthesize chunk
#: ``k+1`` while the parent is still copying chunk ``k`` out; deeper
#: rings only buy memory pressure, since the parent folds in order.
RING_SLOTS = 2

#: Segment offsets are rounded up to this, so every packed array is
#: cache-line aligned regardless of the fields before it.
_ALIGNMENT = 64

#: Distinguishes rings of concurrent campaigns in one process.
_RING_COUNTER = itertools.count()

#: Memoized :func:`shm_available` probe result.
_AVAILABLE: "list[bool]" = []


def shm_available() -> bool:
    """True when POSIX shared memory works on this host (probed once)."""
    if not _AVAILABLE:
        if shared_memory is None:  # pragma: no cover
            _AVAILABLE.append(False)
        else:
            try:
                probe = shared_memory.SharedMemory(create=True, size=1)
            except (OSError, ValueError):  # pragma: no cover - no /dev/shm
                _AVAILABLE.append(False)
            else:
                probe.close()
                try:
                    probe.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
                _AVAILABLE.append(True)
    return _AVAILABLE[0]


def ring_segment_name(prefix: str, worker_id: int, slot: int) -> str:
    return f"{prefix}-w{worker_id}-s{slot}"


@dataclass(frozen=True)
class ShmChunkHandle:
    """Picklable description of one chunk parked in a shared segment.

    ``fields`` maps every array — the four :class:`TraceSet` fields plus
    ``meta:<key>`` entries for array-valued chunk metadata — to its
    ``(name, dtype, shape, offset)`` inside ``segment``.  Everything
    else a :class:`TraceSet` needs (the key) the parent already knows
    from the campaign spec.
    """

    segment: str
    worker_id: int
    n_traces: int
    sample_period_ns: float
    fields: Tuple[Tuple[str, str, Tuple[int, ...], int], ...]
    metadata: dict


def _pack_layout(
    arrays: "Dict[str, np.ndarray]",
) -> "Tuple[Tuple[Tuple[str, str, Tuple[int, ...], int], ...], int]":
    """Aligned (name, dtype, shape, offset) per array + total byte size."""
    offset = 0
    fields = []
    for name, array in arrays.items():
        offset = -(-offset // _ALIGNMENT) * _ALIGNMENT
        fields.append((name, str(array.dtype), tuple(array.shape), offset))
        offset += array.nbytes
    return tuple(fields), max(offset, 1)


def _chunk_arrays(chunk: TraceSet) -> "Tuple[Dict[str, np.ndarray], dict]":
    """Split a chunk into shippable arrays + JSON-ish plain metadata."""
    arrays = {
        "traces": np.ascontiguousarray(chunk.traces),
        "plaintexts": np.ascontiguousarray(chunk.plaintexts),
        "ciphertexts": np.ascontiguousarray(chunk.ciphertexts),
        "times": np.ascontiguousarray(chunk.completion_times_ns),
    }
    plain = {}
    for key, value in chunk.metadata.items():
        if isinstance(value, np.ndarray):
            arrays[f"meta:{key}"] = np.ascontiguousarray(value)
        else:
            plain[key] = value
    return arrays, plain


class WorkerRing:
    """Worker-side publisher: packs chunks into this worker's slots.

    Created by :func:`_init_worker_ring` inside each pool process.
    Segments are kept open and reused between chunks; a slot is only
    rewritten after the parent released it (the semaphore), so there is
    never a reader attached to a segment being recreated.
    """

    def __init__(self, prefix: str, worker_id: int, slots: int, semaphore):
        self.prefix = prefix
        self.worker_id = worker_id
        self.slots = slots
        self.semaphore = semaphore
        self._segments: dict = {}
        self._cursor = 0
        #: Set after a publish failed (``/dev/shm`` exhausted): the
        #: worker entry point stops publishing and falls back to
        #: returning chunks through the pickle result pipe.
        self.broken = False

    def _ensure_segment(self, slot: int, size: int):
        segment = self._segments.get(slot)
        if segment is not None and segment.size >= size:
            return segment
        name = ring_segment_name(self.prefix, self.worker_id, slot)
        if segment is not None:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            self._segments.pop(slot)
        try:
            segment = shared_memory.SharedMemory(name=name, create=True, size=size)
        except FileExistsError:
            # A previous ring with our name died without its sweep (the
            # parent was SIGKILLed); reclaim the stale segment.
            stale = shared_memory.SharedMemory(name=name)
            stale.close()
            try:
                stale.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            segment = shared_memory.SharedMemory(name=name, create=True, size=size)
        self._segments[slot] = segment
        return segment

    def publish(self, chunk: TraceSet) -> ShmChunkHandle:
        """Park ``chunk`` in the next free slot; blocks when ring is full.

        A failure to (re)allocate the slot's segment — ``/dev/shm`` full
        mid-campaign — releases the just-acquired semaphore (so the
        ring's flow-control accounting stays balanced), marks the ring
        :attr:`broken`, and re-raises the ``OSError`` for the caller to
        fall back to the pickle transport.
        """
        arrays, plain_meta = _chunk_arrays(chunk)
        fields, size = _pack_layout(arrays)
        self.semaphore.acquire()
        slot = self._cursor
        try:
            self._cursor = (self._cursor + 1) % self.slots
            segment = self._ensure_segment(slot, size)
            for (name, dtype, shape, offset), array in zip(
                fields, arrays.values()
            ):
                dest = np.ndarray(
                    shape, dtype=dtype, buffer=segment.buf, offset=offset
                )
                dest[...] = array
        except OSError:
            self.semaphore.release()
            self.broken = True
            self.close()
            raise
        return ShmChunkHandle(
            segment=segment.name,
            worker_id=self.worker_id,
            n_traces=chunk.n_traces,
            sample_period_ns=chunk.sample_period_ns,
            fields=fields,
            metadata=plain_meta,
        )

    def close(self) -> None:  # pragma: no cover - worker exit path
        for segment in self._segments.values():
            segment.close()
        self._segments.clear()


#: The pool-process ring, set by :func:`_init_worker_ring`; ``None`` in
#: the parent / inline execution, which is how the worker entry point
#: knows whether to publish or to return the chunk directly.
_WORKER_RING: Optional[WorkerRing] = None


def _init_worker_ring(prefix: str, slots: int, semaphores, counter) -> None:
    """Pool initializer: claim a worker id and build this process's ring.

    Ids come from a shared counter so they are dense regardless of fork
    order.  Should the pool ever respawn a worker (a genuinely killed
    process), the replacement wraps onto the dead worker's semaphore —
    slot accounting stays consistent because the dead worker's
    unreleased slots are exactly the ones whose results never arrive.
    """
    global _WORKER_RING
    with counter.get_lock():
        worker_id = counter.value
        counter.value += 1
    worker_id %= len(semaphores)
    _WORKER_RING = WorkerRing(prefix, worker_id, slots, semaphores[worker_id])


def worker_ring() -> Optional[WorkerRing]:
    return _WORKER_RING


def receive_chunk(handle: ShmChunkHandle, key: bytes) -> TraceSet:
    """Copy a published chunk out of shared memory into a fresh TraceSet.

    The returned arrays are plain private copies — the segment can be
    rewritten or unlinked the moment this returns.  Callers must release
    the worker's slot afterwards (:meth:`ChunkTransportRing.receive`
    does both).
    """
    try:
        segment = shared_memory.SharedMemory(name=handle.segment)
    except FileNotFoundError as exc:
        raise AcquisitionError(
            f"shared-memory segment {handle.segment!r} vanished before the "
            "parent copied its chunk out"
        ) from exc
    try:
        arrays = {}
        for name, dtype, shape, offset in handle.fields:
            view = np.ndarray(shape, dtype=dtype, buffer=segment.buf, offset=offset)
            arrays[name] = view.copy()
    finally:
        segment.close()
    metadata = dict(handle.metadata)
    for name in list(arrays):
        if name.startswith("meta:"):
            metadata[name[len("meta:"):]] = arrays.pop(name)
    return TraceSet(
        traces=arrays["traces"],
        plaintexts=arrays["plaintexts"],
        ciphertexts=arrays["ciphertexts"],
        key=key,
        completion_times_ns=arrays["times"],
        sample_period_ns=handle.sample_period_ns,
        metadata=metadata,
    )


class ChunkTransportRing:
    """Parent-side controller: ring identity, flow control, and cleanup.

    Construct before the pool, pass :meth:`initargs` to the pool's
    initializer, :meth:`receive` every handle the pool returns, and call
    :meth:`unlink_all` on every exit path — it is idempotent and sweeps
    every name the ring could have created, so it is safe (and required)
    after crashes that interrupt workers mid-publish.
    """

    def __init__(self, ctx, n_workers: int, slots: int = RING_SLOTS):
        self.prefix = f"rftc-shm-{os.getpid()}-{next(_RING_COUNTER)}"
        self.n_workers = int(n_workers)
        self.slots = int(slots)
        self._semaphores = [ctx.Semaphore(self.slots) for _ in range(self.n_workers)]
        self._counter = ctx.Value("i", 0)

    def initargs(self) -> tuple:
        return (self.prefix, self.slots, self._semaphores, self._counter)

    def receive(self, handle: ShmChunkHandle, key: bytes) -> TraceSet:
        """Materialise a handle and free its worker's slot."""
        chunk = receive_chunk(handle, key)
        self._semaphores[handle.worker_id].release()
        return chunk

    def segment_names(self) -> "list[str]":
        return [
            ring_segment_name(self.prefix, worker, slot)
            for worker in range(self.n_workers)
            for slot in range(self.slots)
        ]

    def unlink_all(self) -> int:
        """Unlink every ring segment still present; returns the count."""
        swept = 0
        if shared_memory is None:  # pragma: no cover
            return swept
        for name in self.segment_names():
            try:
                segment = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - racing sweep
                continue
            swept += 1
        return swept


#: Every ring name starts with this; leak scans key on it.
SEGMENT_PREFIX = "rftc-shm-"


def leaked_segments(prefix: str = SEGMENT_PREFIX) -> "list[str]":
    """Names of ``/dev/shm`` segments matching ``prefix`` (leak scan).

    Segments only outlive their campaign when the *whole* process tree
    was SIGKILLed (the resource tracker died with it); the parent PID in
    the name identifies the culprit.  Returns ``[]`` on hosts without a
    ``/dev/shm`` filesystem.
    """
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-Linux host
        return []
    return sorted(p.name for p in root.glob(f"{prefix}*"))


def sweep_prefix(prefix: str = SEGMENT_PREFIX) -> "list[str]":
    """Unlink every ``/dev/shm`` segment matching ``prefix``.

    The manual remedy for the one true leak path (tree-wide SIGKILL):
    operators and the chaos soak call this to reclaim orphaned ring
    segments.  Returns the names actually unlinked; racing sweeps are
    tolerated.
    """
    swept = []
    if shared_memory is None:  # pragma: no cover
        return swept
    for name in leaked_segments(prefix):
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - racing sweep
            continue
        swept.append(name)
    return swept
