"""The streaming campaign engine: parallel acquisition in bounded memory.

``StreamingCampaign`` shards a campaign into fixed-size chunks, acquires
them on a ``multiprocessing`` pool, and streams each finished chunk — in
acquisition order — into an optional
:class:`~repro.store.ChunkedTraceStore` and any number of
:class:`~repro.pipeline.consumers.TraceConsumer` plug-ins.  Peak resident
trace memory is O(workers x chunk), never O(campaign), which is what
makes the paper's four-million-trace evaluations reachable.

Reproducibility contract
------------------------
The master seed feeds one :class:`numpy.random.SeedSequence`; chunk ``i``
gets child ``i`` of ``spawn(n_chunks)`` and derives from it a device
stream (countermeasure randomness) and a data stream (plaintexts, analog
noise).  Chunk results are therefore a pure function of ``(spec, seed,
chunk layout)`` — the worker count only decides *where* a chunk is
computed, and the parent folds chunks in index order, so consumer output
is identical for 1 or N workers (asserted by the test suite).

Fault tolerance
---------------
The same purity is what makes multi-hour campaigns *restartable*:

* each chunk's acquisition is retried per the engine's
  :class:`~repro.pipeline.retry.RetryPolicy` (inside the worker, from
  the same spawned seeds, so a retried chunk is bit-identical);
* if the pool dies or a chunk times out, the engine **degrades** to
  inline single-process execution for the remaining chunks instead of
  aborting (``PipelineReport.degraded``);
* with ``checkpoint=...`` the engine writes an atomic
  :class:`~repro.pipeline.checkpoint.CampaignCheckpoint` after every
  folded chunk, and :meth:`StreamingCampaign.resume` continues a killed
  campaign — replaying chunks already persisted to the store and
  re-deriving the rest — with bit-identical final results.

See ``docs/robustness.md`` for the guarantees and their tests.

Observability
-------------
Pass an :class:`~repro.obs.Observability` bundle and the engine reports
itself while running: per-chunk acquire/fold/store/checkpoint spans,
retry and degradation counters, throughput gauges (see
``docs/observability.md`` for the full catalogue).  Workers trace into
per-chunk buffers that ride home with each chunk result, so one JSONL
file covers both sides of the pool.  Instrumentation never touches the
chunk RNG streams or persisted bytes: results are bit-identical with
observability on or off (``tests/pipeline/test_observability.py``).
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import (
    AcquisitionError,
    CheckpointError,
    ConfigurationError,
    PoolBrokenError,
)
from repro.obs import NULL_OBS, Observability
from repro.pipeline import shm as shm_transport
from repro.pipeline.checkpoint import CampaignCheckpoint
from repro.pipeline.consumers import TraceConsumer
from repro.pipeline.retry import RetryPolicy
from repro.pipeline.spec import CampaignSpec
from repro.power.acquisition import TraceSet
from repro.store import ChunkedTraceStore
from repro.testing.faults import FaultPlan

#: A unit of worker work: (chunk index, trace count, chunk seed, spec,
#: retry policy, fault plan, observe flag, absolute trace offset).
#: The offset is the campaign index of the chunk's first trace — what
#: environment-drift models key on (see :mod:`repro.power.drift`).
_ChunkTask = Tuple[
    int,
    int,
    np.random.SeedSequence,
    CampaignSpec,
    RetryPolicy,
    Optional[FaultPlan],
    bool,
    int,
]

#: What a worker ships home besides the chunk: its private metrics
#: snapshot and drained trace events (``None`` when not observing).
_ObsPayload = Optional[dict]

#: Exceptions from collecting a pool result that mean "the pool is gone",
#: not "the chunk is bad" — the engine degrades to inline execution on
#: these instead of aborting the campaign.
_POOL_FAILURES = (multiprocessing.TimeoutError, PoolBrokenError, BrokenPipeError)


def _abandon_pool(pool, prompt: bool = False) -> None:
    """Hard-stop a failed pool without letting teardown block the campaign.

    ``Pool.terminate()`` can deadlock when a worker is mid-write of a
    chunk result larger than the pipe buffer: the terminate sequence
    stops the result-reader thread, then needs the result queue's write
    lock — which the blocked worker holds while waiting for a reader.
    Workers are therefore SIGKILLed first (a killed writer releases the
    pipe, and the work is re-acquired inline anyway), and the blocking
    ``terminate()``/``join()`` runs on a daemon thread: if teardown still
    wedges, an idle pool is leaked until interpreter exit instead of
    hanging a multi-hour campaign.

    With ``prompt=True`` — the shared-memory transport, whose results
    are tiny handles that can never wedge the result pipe — teardown is
    instead a plain synchronous ``terminate()``/``join()``: no SIGKILL,
    no leaked pool, and the caller may sweep the ring's segments the
    moment this returns (asserted prompt by
    ``tests/pipeline/test_transport.py``).
    """
    if prompt:
        pool.terminate()
        pool.join()
        return

    def reap() -> None:
        for proc in getattr(pool, "_pool", ()):
            if proc.exitcode is None:
                proc.kill()
        pool.terminate()
        pool.join()

    threading.Thread(target=reap, name="pool-reaper", daemon=True).start()


def _acquire_chunk(
    task: _ChunkTask,
) -> Tuple[
    int,
    Union[TraceSet, shm_transport.ShmChunkHandle],
    float,
    int,
    _ObsPayload,
]:
    """Worker entry point: build a fresh device and acquire one chunk.

    In a pool whose initializer armed the shared-memory ring, the chunk
    comes home as a :class:`~repro.pipeline.shm.ShmChunkHandle` parked
    in this worker's ring slot; otherwise (inline, or the pickle
    fallback transport) the :class:`TraceSet` itself is returned.

    Runs in the parent when ``workers == 1`` (or after pool degradation)
    and in pool processes otherwise; either way the chunk's randomness
    comes only from its spawned seed sequence, never from process-local
    state.  Failed attempts are retried per the task's
    :class:`RetryPolicy` **from the same seed children** — the seeds are
    spawned once, before the first attempt — so a chunk that needed
    three attempts is bit-identical to one that succeeded immediately.

    When the task's observe flag is set, the worker opens a *private*
    observability bundle (perf_counter clocks are per-process, so worker
    spans never share the parent timebase), instruments the device, and
    ships the metrics snapshot + drained trace events home in the fifth
    tuple slot for the parent to fold.  Observation reads clocks only —
    the chunk's RNG streams and bytes are untouched.
    """
    index, n, chunk_seed, spec, retry, faults, observe, trace_offset = task
    obs = Observability.create(origin=f"worker:chunk-{index}") if observe else NULL_OBS
    started = time.perf_counter()
    device_seq, data_seq = chunk_seed.spawn(2)
    attempt = 0
    with obs.tracer.span("acquire_chunk", chunk=index, traces=n):
        while True:
            attempt += 1
            try:
                if faults is not None:
                    faults.check_worker(index, attempt)
                device = spec.build_device(np.random.default_rng(device_seq))
                device.obs = obs
                device.trace_offset = trace_offset
                rng = np.random.default_rng(data_seq)
                plaintexts = rng.integers(0, 256, size=(n, 16), dtype=np.uint8)
                if spec.fixed_plaintext is not None:
                    plaintexts[0::2] = np.frombuffer(
                        spec.fixed_plaintext, dtype=np.uint8
                    )
                chunk = device.run(plaintexts, rng)
            except Exception:
                if attempt >= retry.max_attempts:
                    raise
                obs.metrics.inc("campaign_attempt_failures_total")
                delay = retry.backoff_seconds(
                    attempt, chunk_seed, metrics=obs.metrics
                )
                if delay > 0.0:
                    time.sleep(delay)
                continue
            break
    chunk.metadata["chunk_index"] = index
    if spec.fixed_plaintext is not None:
        chunk.metadata["tvla_interleaved"] = True
    payload: _ObsPayload = None
    if observe:
        payload = {
            "metrics": obs.metrics.snapshot(),
            "events": obs.tracer.drain(),
        }
    ring = shm_transport.worker_ring()
    if ring is not None and not ring.broken:
        try:
            if faults is not None:
                faults.check_shm_publish(index)
            handle = ring.publish(chunk)
        except OSError:
            # /dev/shm exhausted mid-run (or injected): this worker's
            # ring is done — fall back to pickling the chunk through
            # the result pipe.  The transport only moves bytes, so the
            # campaign's results are unchanged; the parent records the
            # downgrade when a plain TraceSet arrives on a shm run.
            ring.broken = True
            ring.close()
        else:
            return index, handle, time.perf_counter() - started, attempt, payload
    return index, chunk, time.perf_counter() - started, attempt, payload


@dataclass
class ChunkProgress:
    """What a progress callback sees after each chunk is folded."""

    chunk_index: int
    n_chunks: int
    chunk_traces: int
    done_traces: int
    total_traces: int
    elapsed_seconds: float

    @property
    def traces_per_second(self) -> float:
        return self.done_traces / self.elapsed_seconds if self.elapsed_seconds else 0.0


ProgressCallback = Callable[[ChunkProgress], None]


@dataclass
class PipelineReport:
    """Outcome + per-stage wall-clock accounting of one pipeline run.

    ``acquire_seconds`` sums per-chunk worker time (it exceeds the wall
    clock when workers overlap); ``consume_seconds`` and
    ``store_seconds`` are parent-side folding and persistence time.

    The recovery fields tell an operator whether the run limped home:
    ``retried_chunks``/``total_retries`` count worker-side retries,
    ``degraded`` flags a pool failure that forced the remaining
    ``degraded_chunks`` to run inline, and ``resumed_from_chunk`` /
    ``replayed_chunks`` describe a checkpoint resume.
    """

    spec: CampaignSpec
    n_traces: int
    chunk_size: int
    n_chunks: int
    workers: int
    seed: int
    wall_seconds: float
    acquire_seconds: float
    consume_seconds: float
    store_seconds: float
    results: Dict[str, object] = field(default_factory=dict)
    store_path: Optional[Path] = None
    #: Acquisition time split by measurement-chain stage (schedule /
    #: crypto / leakage / synth / capture), summed over chunks and workers
    #: — the breakdown of ``acquire_seconds``.
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: Chunks that needed more than one acquisition attempt.
    retried_chunks: int = 0
    #: Extra attempts beyond the first, summed over all chunks.
    total_retries: int = 0
    #: True when the worker pool died and the engine fell back to
    #: inline single-process acquisition for the remaining chunks.
    degraded: bool = False
    #: Chunks acquired inline after the pool failure.
    degraded_chunks: int = 0
    #: First chunk index acquired by this run when resuming (``None``
    #: for a fresh campaign).
    resumed_from_chunk: Optional[int] = None
    #: Chunks folded from the store rather than re-acquired on resume.
    replayed_chunks: int = 0
    #: How fresh chunks travelled home: ``"shm-ring"`` (shared-memory
    #: segments), ``"pickle"`` (the pool's result pipe), or ``"inline"``
    #: (no pool — single worker or nothing fresh to acquire).
    transport: str = "inline"
    #: True when shared-memory ring allocation failed (at startup or
    #: mid-run) and chunks fell back to the pickle result pipe.  Results
    #: are unaffected — the transport only moves bytes.
    transport_degraded: bool = False

    @property
    def traces_per_second(self) -> float:
        return self.n_traces / self.wall_seconds if self.wall_seconds else 0.0

    def summary(self) -> str:
        lines = [
            f"{self.spec.label()}: {self.n_traces} traces in "
            f"{self.n_chunks} chunks of <= {self.chunk_size} "
            f"({self.workers} worker{'s' if self.workers != 1 else ''}, seed {self.seed})",
            f"  wall    : {self.wall_seconds:.2f} s "
            f"({self.traces_per_second:.0f} traces/s)",
            f"  acquire : {self.acquire_seconds:.2f} s (summed over workers)",
            f"  consume : {self.consume_seconds:.2f} s",
        ]
        if self.transport != "inline":
            line = f"  chunks  : {self.transport} transport"
            if self.transport_degraded:
                line += " (shm exhausted -> DEGRADED to pickle)"
            lines.append(line)
        if self.stage_seconds:
            split = ", ".join(
                f"{stage} {seconds:.2f} s"
                for stage, seconds in self.stage_seconds.items()
            )
            lines.append(f"  stages  : {split}")
        if self.store_path is not None:
            lines.append(
                f"  store   : {self.store_seconds:.2f} s -> {self.store_path}"
            )
        if self.resumed_from_chunk is not None:
            line = f"  resume  : continued at chunk {self.resumed_from_chunk}"
            if self.replayed_chunks:
                line += f" ({self.replayed_chunks} chunk(s) replayed from store)"
            lines.append(line)
        if self.retried_chunks or self.degraded:
            parts = []
            if self.retried_chunks:
                parts.append(
                    f"{self.retried_chunks} chunk(s) recovered after "
                    f"{self.total_retries} retry(ies)"
                )
            if self.degraded:
                parts.append(
                    "pool died -> DEGRADED to inline execution for "
                    f"{self.degraded_chunks} chunk(s)"
                )
            lines.append(f"  recovery: {'; '.join(parts)}")
        return "\n".join(lines)


class StreamingCampaign:
    """Chunked, parallel acquisition with pluggable streaming analysis.

    Parameters
    ----------
    spec:
        What to acquire from (see :class:`CampaignSpec`).
    chunk_size:
        Traces per chunk — the memory/scheduling granularity.
    workers:
        Process count; ``1`` runs inline (no pool, identical results).
    seed:
        Master seed of the campaign's ``SeedSequence`` tree.
    start_method:
        Optional ``multiprocessing`` start method (defaults to the
        platform's; ``"fork"`` on Linux keeps warmed plan caches shared).
    retry:
        Per-chunk :class:`RetryPolicy` (bounded attempts, deterministic
        backoff).  The default retries each chunk up to 3 times.
    chunk_timeout_s:
        Parent-side cap on waiting for one pooled chunk; on expiry the
        pool is presumed dead and the engine degrades to inline
        execution.  ``None`` (default) waits indefinitely.
    transport:
        How pooled workers ship finished chunks home.  ``"auto"``
        (default) uses shared-memory segment rings
        (:mod:`repro.pipeline.shm`) when the host supports them, else
        the pickle result pipe; ``"shm"`` requires shared memory (a
        :class:`~repro.errors.ConfigurationError` if unavailable);
        ``"pickle"`` forces the pipe.  Irrelevant — and ignored — when
        ``workers == 1``.  Chunk bytes are identical either way.
    store_budget_bytes:
        Optional disk budget applied to the campaign's store
        (:attr:`ChunkedTraceStore.disk_budget_bytes`): an append that
        would breach it fails with
        :class:`~repro.errors.StorageExhaustedError` before any I/O.
    faults:
        Optional :class:`~repro.testing.faults.FaultPlan` driving the
        deterministic fault-injection harness (tests / ``--inject-fault``).
    obs:
        Optional :class:`~repro.obs.Observability` bundle; when given,
        the engine records metrics and spans into it (CLI
        ``--metrics-out``/``--trace-out``).  Defaults to the zero-cost
        null bundle — instrumentation disabled.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        chunk_size: int = 5000,
        workers: int = 1,
        seed: int = 0,
        start_method: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        chunk_timeout_s: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
        obs: Optional[Observability] = None,
        transport: str = "auto",
        store_budget_bytes: Optional[int] = None,
    ):
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if chunk_timeout_s is not None and chunk_timeout_s <= 0:
            raise ConfigurationError("chunk_timeout_s must be positive")
        if transport not in ("auto", "shm", "pickle"):
            raise ConfigurationError(
                "transport must be 'auto', 'shm', or 'pickle', "
                f"got {transport!r}"
            )
        if store_budget_bytes is not None and store_budget_bytes < 1:
            raise ConfigurationError("store_budget_bytes must be >= 1")
        self.spec = spec
        self.chunk_size = int(chunk_size)
        self.workers = int(workers)
        self.seed = int(seed)
        self.start_method = start_method
        self.retry = retry if retry is not None else RetryPolicy()
        self.chunk_timeout_s = chunk_timeout_s
        self.faults = faults
        self.obs = obs if obs is not None else NULL_OBS
        self.transport = transport
        self.store_budget_bytes = store_budget_bytes

    def chunk_layout(self, n_traces: int) -> List[int]:
        """Chunk sizes for a campaign of ``n_traces`` (last may be short)."""
        if n_traces < 1:
            raise AcquisitionError("n_traces must be >= 1")
        sizes = [self.chunk_size] * (n_traces // self.chunk_size)
        if n_traces % self.chunk_size:
            sizes.append(n_traces % self.chunk_size)
        return sizes

    def _tasks(self, n_traces: int) -> List[_ChunkTask]:
        sizes = self.chunk_layout(n_traces)
        seeds = np.random.SeedSequence(self.seed).spawn(len(sizes))
        observe = self.obs.enabled
        offsets = [0] * len(sizes)
        for index in range(1, len(sizes)):
            offsets[index] = offsets[index - 1] + sizes[index - 1]
        return [
            (
                index, size, seeds[index], self.spec, self.retry, self.faults,
                observe, offsets[index],
            )
            for index, size in enumerate(sizes)
        ]

    def run(
        self,
        n_traces: int,
        consumers: Sequence[TraceConsumer] = (),
        store: Union[ChunkedTraceStore, str, Path, None] = None,
        progress: Optional[ProgressCallback] = None,
        checkpoint: Union[str, Path, None] = None,
    ) -> PipelineReport:
        """Acquire ``n_traces``, streaming chunks to consumers and store.

        ``store`` may be an open :class:`ChunkedTraceStore` or a path (a
        fresh store is created there).  Chunks are folded strictly in
        index order even when workers finish out of order.  With
        ``checkpoint`` set, an atomic resume point is rewritten after
        every folded chunk (see :meth:`resume`).
        """
        tasks = self._tasks(n_traces)
        return self._execute(
            n_traces,
            tasks,
            consumers=consumers,
            store=store,
            progress=progress,
            checkpoint_path=checkpoint,
            folded_chunks=0,
            replay_until=0,
            resumed_from=None,
        )

    @classmethod
    def resume(
        cls,
        store: Union[ChunkedTraceStore, str, Path, None],
        checkpoint: Union[CampaignCheckpoint, str, Path],
        consumers: Sequence[TraceConsumer] = (),
        workers: int = 1,
        progress: Optional[ProgressCallback] = None,
        checkpoint_path: Union[str, Path, None] = None,
        start_method: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        chunk_timeout_s: Optional[float] = None,
        faults: Optional[FaultPlan] = None,
        obs: Optional[Observability] = None,
        transport: str = "auto",
    ) -> PipelineReport:
        """Continue an interrupted campaign from its checkpoint.

        Rebuilds the campaign (spec, seed, chunk layout) from the
        checkpoint, restores ``consumers`` (which must match the
        checkpointed names) onto their saved accumulator states, folds
        any chunks the store holds beyond the checkpoint (a crash
        between store append and checkpoint write loses nothing), then
        acquires the remaining chunks from the same ``SeedSequence``
        tree.  Because chunk content is a pure function of ``(spec,
        seed, chunk layout)``, the final consumer results and store
        bytes are **bit-identical** to an uninterrupted run.

        Checkpoints keep being written during the resumed run — to
        ``checkpoint_path`` if given, else to the path ``checkpoint``
        was loaded from.
        """
        if isinstance(checkpoint, CampaignCheckpoint):
            ckpt = checkpoint
        else:
            if checkpoint_path is None:
                checkpoint_path = checkpoint
            ckpt = CampaignCheckpoint.load(checkpoint)
        engine = cls(
            ckpt.spec(),
            chunk_size=ckpt.chunk_size,
            workers=workers,
            seed=ckpt.seed,
            start_method=start_method,
            retry=retry,
            chunk_timeout_s=chunk_timeout_s,
            faults=faults,
            obs=obs,
            transport=transport,
        )
        ckpt.restore_consumers(consumers)
        tasks = engine._tasks(ckpt.n_traces)
        if not 0 <= ckpt.chunks_done <= len(tasks):
            raise CheckpointError(
                f"checkpoint claims {ckpt.chunks_done} folded chunks but the "
                f"campaign has {len(tasks)}"
            )
        if store is not None and not isinstance(store, ChunkedTraceStore):
            store = ChunkedTraceStore.open(store)
        replay_until = ckpt.chunks_done
        if store is not None:
            layout = [task[1] for task in tasks]
            if store.n_chunks > len(tasks):
                raise CheckpointError(
                    f"store holds {store.n_chunks} chunks; the campaign has "
                    f"only {len(tasks)}"
                )
            if store.n_chunks < ckpt.chunks_done:
                raise CheckpointError(
                    f"store holds {store.n_chunks} chunks but the checkpoint "
                    f"folded {ckpt.chunks_done}; chunks were persisted before "
                    "being checkpointed, so this store cannot have written "
                    "this checkpoint"
                )
            if store.chunk_sizes() != layout[: store.n_chunks]:
                raise CheckpointError(
                    "store chunk sizes do not match the campaign layout; "
                    "wrong store for this checkpoint?"
                )
            replay_until = store.n_chunks
        return engine._execute(
            ckpt.n_traces,
            tasks,
            consumers=consumers,
            store=store,
            progress=progress,
            checkpoint_path=checkpoint_path,
            folded_chunks=ckpt.chunks_done,
            replay_until=replay_until,
            resumed_from=ckpt.chunks_done,
        )

    # -- core ----------------------------------------------------------

    def _execute(
        self,
        n_traces: int,
        tasks: List[_ChunkTask],
        consumers: Sequence[TraceConsumer],
        store: Union[ChunkedTraceStore, str, Path, None],
        progress: Optional[ProgressCallback],
        checkpoint_path: Union[str, Path, None],
        folded_chunks: int,
        replay_until: int,
        resumed_from: Optional[int],
    ) -> PipelineReport:
        store_path: Optional[Path] = None
        if store is not None and not isinstance(store, ChunkedTraceStore):
            # Deferred: created from the first chunk, which knows the
            # sample period without building a throwaway device here.
            store_path, store = Path(store), None
        if checkpoint_path is not None:
            checkpoint_path = Path(checkpoint_path)
            # Fail on un-checkpointable consumers up front, not at chunk 1.
            CampaignCheckpoint.capture(
                self.spec, self.seed, self.chunk_size, n_traces,
                folded_chunks, consumers,
            )
        self.spec.warm_caches()

        obs = self.obs
        if obs.enabled:
            # Consumers that expose a metrics hook report their own fold
            # cost (e.g. the incremental CPA accumulators).
            for consumer in consumers:
                set_metrics = getattr(consumer, "set_metrics", None)
                if callable(set_metrics):
                    set_metrics(obs.metrics)
            obs.metrics.set_gauge("campaign_total_traces", n_traces)
            obs.metrics.set_gauge("campaign_workers", self.workers)

        started = time.perf_counter()
        acquire_s = consume_s = store_s = 0.0
        stage_s: Dict[str, float] = {}
        done = sum(task[1] for task in tasks[:folded_chunks])
        retried_chunks = total_retries = degraded_chunks = 0
        degraded = False
        transport_degraded = False

        def _store_chunk(chunk: TraceSet) -> None:
            # Deferred-creation dance: the store is created lazily from
            # the first persisted chunk, which knows the sample period.
            nonlocal store
            if store is None:
                store = ChunkedTraceStore.create(
                    store_path,
                    key=self.spec.key,
                    sample_period_ns=chunk.sample_period_ns,
                    metadata={
                        "target": self.spec.label(),
                        "seed": self.seed,
                        "chunk_size": self.chunk_size,
                    },
                    compression=self.spec.compression,
                )
            store.metrics = obs.metrics
            store.faults = self.faults
            if self.store_budget_bytes is not None:
                store.disk_budget_bytes = self.store_budget_bytes
            store.append(chunk)

        def fold(index: int, chunk: TraceSet, persist: bool) -> None:
            """Stream one chunk (replayed or fresh) through store/consumers."""
            nonlocal consume_s, store_s, done
            # Pop, don't get: wall-clock stage timings must never reach
            # the store, or persisted chunk bytes stop being a pure
            # function of (spec, seed, layout).
            for stage, seconds in chunk.metadata.pop(
                "stage_seconds", {}
            ).items():
                stage_s[stage] = stage_s.get(stage, 0.0) + float(seconds)
            with obs.tracer.span(
                "fold_chunk", chunk=index, traces=chunk.n_traces,
                replayed=not persist,
            ):
                if persist and (store is not None or store_path is not None):
                    t0 = time.perf_counter()
                    with obs.tracer.span("store_append", chunk=index):
                        _store_chunk(chunk)
                    elapsed = time.perf_counter() - t0
                    store_s += elapsed
                    obs.metrics.observe("campaign_store_append_seconds", elapsed)
                t0 = time.perf_counter()
                for consumer in consumers:
                    with obs.tracer.span(
                        "consume", chunk=index, consumer=consumer.name
                    ):
                        consumer.consume(chunk)
                elapsed = time.perf_counter() - t0
                consume_s += elapsed
                obs.metrics.observe("campaign_consume_seconds", elapsed)
                done += chunk.n_traces
                if checkpoint_path is not None:
                    t0 = time.perf_counter()
                    with obs.tracer.span("checkpoint", chunk=index):
                        CampaignCheckpoint.capture(
                            self.spec, self.seed, self.chunk_size, n_traces,
                            index + 1, consumers,
                        ).save(checkpoint_path)
                    obs.metrics.observe(
                        "campaign_checkpoint_seconds",
                        time.perf_counter() - t0,
                    )
                    obs.metrics.inc("campaign_checkpoints_total")
            obs.metrics.inc(
                "campaign_chunks_total",
                phase="fresh" if persist else "replayed",
            )
            obs.metrics.inc("campaign_traces_total", chunk.n_traces)
            obs.metrics.set_gauge("campaign_done_traces", done)
            if progress is not None:
                progress(
                    ChunkProgress(
                        chunk_index=index,
                        n_chunks=len(tasks),
                        chunk_traces=chunk.n_traces,
                        done_traces=done,
                        total_traces=n_traces,
                        elapsed_seconds=time.perf_counter() - started,
                    )
                )
            if self.faults is not None:
                self.faults.check_crash(index)

        fresh = tasks[max(folded_chunks, replay_until):]
        pool = None
        ring = None
        transport_used = "inline"
        try:
            # Phase 1 (resume only): chunks the store already holds are
            # folded from disk — never re-acquired, so store bytes are
            # untouched and consumer folds see the exact same data.
            for index in range(folded_chunks, replay_until):
                chunk = store.chunk(index)
                if chunk.n_traces != tasks[index][1]:
                    raise CheckpointError(
                        f"stored chunk {index} holds {chunk.n_traces} traces; "
                        f"the campaign layout expects {tasks[index][1]}"
                    )
                fold(index, chunk, persist=False)

            # Phase 2: acquire the remaining chunks.
            async_results = None
            if self.workers > 1 and len(fresh) > 0:
                use_shm = self.transport != "pickle" and shm_transport.shm_available()
                if self.transport == "shm" and not use_shm:
                    raise ConfigurationError(
                        "transport='shm' requested but POSIX shared memory "
                        "is unavailable on this host"
                    )
                ctx = (
                    multiprocessing.get_context(self.start_method)
                    if self.start_method
                    else multiprocessing.get_context()
                )
                n_procs = min(self.workers, len(fresh))
                if use_shm:
                    try:
                        ring = shm_transport.ChunkTransportRing(ctx, n_procs)
                    except OSError:
                        # Ring allocation failed at startup (semaphores /
                        # /dev/shm exhausted): degrade to the pickle
                        # transport rather than aborting the campaign.
                        ring = None
                        use_shm = False
                        transport_degraded = True
                        obs.metrics.inc("campaign_transport_degraded_total")
                        obs.tracer.instant(
                            "transport_degraded", phase="startup"
                        )
                if use_shm:
                    pool = ctx.Pool(
                        processes=n_procs,
                        initializer=shm_transport._init_worker_ring,
                        initargs=ring.initargs(),
                    )
                    transport_used = "shm-ring"
                else:
                    pool = ctx.Pool(processes=n_procs)
                    transport_used = "pickle"
                async_results = [
                    pool.apply_async(_acquire_chunk, (task,)) for task in fresh
                ]
            for position, task in enumerate(fresh):
                if pool is not None:
                    try:
                        if self.faults is not None:
                            self.faults.check_pool(task[0])
                        (
                            index, chunk, chunk_acquire_s, attempts, payload,
                        ) = async_results[position].get(self.chunk_timeout_s)
                        if isinstance(chunk, shm_transport.ShmChunkHandle):
                            chunk = ring.receive(chunk, key=self.spec.key)
                            obs.metrics.inc("campaign_shm_chunks_total")
                        elif ring is not None and not transport_degraded:
                            # A plain TraceSet on a shm run: the worker's
                            # ring broke mid-campaign and it downgraded
                            # itself to the pickle result pipe.
                            transport_degraded = True
                            obs.metrics.inc(
                                "campaign_transport_degraded_total"
                            )
                            obs.tracer.instant(
                                "transport_degraded", phase="mid-run",
                                chunk=task[0],
                            )
                    except _POOL_FAILURES:
                        # The pool (not the chunk) failed: abandon it and
                        # limp home inline rather than losing the campaign.
                        degraded = True
                        obs.metrics.inc("campaign_pool_failures_total")
                        obs.tracer.instant(
                            "pool_degraded", chunk=task[0],
                            remaining=len(fresh) - position,
                        )
                        _abandon_pool(pool, prompt=ring is not None)
                        pool = None
                if pool is None:
                    index, chunk, chunk_acquire_s, attempts, payload = (
                        _acquire_chunk(task)
                    )
                    if degraded:
                        degraded_chunks += 1
                        obs.metrics.inc("campaign_degraded_chunks_total")
                if payload is not None:
                    obs.metrics.merge_snapshot(payload["metrics"])
                    obs.tracer.extend(payload["events"])
                acquire_s += chunk_acquire_s
                obs.metrics.observe(
                    "campaign_chunk_acquire_seconds", chunk_acquire_s
                )
                if attempts > 1:
                    retried_chunks += 1
                    total_retries += attempts - 1
                    obs.metrics.inc("campaign_retried_chunks_total")
                    obs.metrics.inc("campaign_retries_total", attempts - 1)
                fold(index, chunk, persist=True)
        except BaseException:
            # Workers may still be mid-chunk; close()+join() would block
            # on them while the campaign is already dead.  Kill the pool,
            # surface the original error.
            if pool is not None:
                _abandon_pool(pool, prompt=ring is not None)
                pool = None
            raise
        finally:
            if pool is not None:
                pool.close()
                pool.join()
            if ring is not None:
                # Sweep the ring on every exit path — normal completion,
                # degrade, timeout, crash, SIGINT — so no segment can
                # outlive the campaign.
                ring.unlink_all()

        obs.metrics.set_gauge(
            "campaign_wall_seconds", time.perf_counter() - started
        )
        return PipelineReport(
            spec=self.spec,
            n_traces=done,
            chunk_size=self.chunk_size,
            n_chunks=len(tasks),
            workers=self.workers,
            seed=self.seed,
            wall_seconds=time.perf_counter() - started,
            acquire_seconds=acquire_s,
            consume_seconds=consume_s,
            store_seconds=store_s,
            results={c.name: c.result() for c in consumers},
            store_path=store.path if store is not None else None,
            stage_seconds=stage_s,
            retried_chunks=retried_chunks,
            total_retries=total_retries,
            degraded=degraded,
            degraded_chunks=degraded_chunks,
            resumed_from_chunk=resumed_from,
            replayed_chunks=max(0, replay_until - folded_chunks),
            transport=transport_used,
            transport_degraded=transport_degraded,
        )
