"""The streaming campaign engine: parallel acquisition in bounded memory.

``StreamingCampaign`` shards a campaign into fixed-size chunks, acquires
them on a ``multiprocessing`` pool, and streams each finished chunk — in
acquisition order — into an optional
:class:`~repro.store.ChunkedTraceStore` and any number of
:class:`~repro.pipeline.consumers.TraceConsumer` plug-ins.  Peak resident
trace memory is O(workers x chunk), never O(campaign), which is what
makes the paper's four-million-trace evaluations reachable.

Reproducibility contract
------------------------
The master seed feeds one :class:`numpy.random.SeedSequence`; chunk ``i``
gets child ``i`` of ``spawn(n_chunks)`` and derives from it a device
stream (countermeasure randomness) and a data stream (plaintexts, analog
noise).  Chunk results are therefore a pure function of ``(spec, seed,
chunk layout)`` — the worker count only decides *where* a chunk is
computed, and the parent folds chunks in index order, so consumer output
is identical for 1 or N workers (asserted by the test suite).
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import AcquisitionError, ConfigurationError
from repro.pipeline.consumers import TraceConsumer
from repro.pipeline.spec import CampaignSpec
from repro.power.acquisition import TraceSet
from repro.store import ChunkedTraceStore

#: A unit of worker work: (chunk index, trace count, chunk seed, spec).
_ChunkTask = Tuple[int, int, np.random.SeedSequence, CampaignSpec]


def _acquire_chunk(task: _ChunkTask) -> Tuple[int, TraceSet, float]:
    """Worker entry point: build a fresh device and acquire one chunk.

    Runs in the parent when ``workers == 1`` and in pool processes
    otherwise; either way the chunk's randomness comes only from its
    spawned seed sequence, never from process-local state.
    """
    index, n, chunk_seed, spec = task
    started = time.perf_counter()
    device_seq, data_seq = chunk_seed.spawn(2)
    device = spec.build_device(np.random.default_rng(device_seq))
    rng = np.random.default_rng(data_seq)
    plaintexts = rng.integers(0, 256, size=(n, 16), dtype=np.uint8)
    if spec.fixed_plaintext is not None:
        plaintexts[0::2] = np.frombuffer(spec.fixed_plaintext, dtype=np.uint8)
    chunk = device.run(plaintexts, rng)
    chunk.metadata["chunk_index"] = index
    if spec.fixed_plaintext is not None:
        chunk.metadata["tvla_interleaved"] = True
    return index, chunk, time.perf_counter() - started


@dataclass
class ChunkProgress:
    """What a progress callback sees after each chunk is folded."""

    chunk_index: int
    n_chunks: int
    chunk_traces: int
    done_traces: int
    total_traces: int
    elapsed_seconds: float

    @property
    def traces_per_second(self) -> float:
        return self.done_traces / self.elapsed_seconds if self.elapsed_seconds else 0.0


ProgressCallback = Callable[[ChunkProgress], None]


@dataclass
class PipelineReport:
    """Outcome + per-stage wall-clock accounting of one pipeline run.

    ``acquire_seconds`` sums per-chunk worker time (it exceeds the wall
    clock when workers overlap); ``consume_seconds`` and
    ``store_seconds`` are parent-side folding and persistence time.
    """

    spec: CampaignSpec
    n_traces: int
    chunk_size: int
    n_chunks: int
    workers: int
    seed: int
    wall_seconds: float
    acquire_seconds: float
    consume_seconds: float
    store_seconds: float
    results: Dict[str, object] = field(default_factory=dict)
    store_path: Optional[Path] = None
    #: Acquisition time split by measurement-chain stage (schedule /
    #: crypto / leakage / synth / capture), summed over chunks and workers
    #: — the breakdown of ``acquire_seconds``.
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def traces_per_second(self) -> float:
        return self.n_traces / self.wall_seconds if self.wall_seconds else 0.0

    def summary(self) -> str:
        lines = [
            f"{self.spec.label()}: {self.n_traces} traces in "
            f"{self.n_chunks} chunks of <= {self.chunk_size} "
            f"({self.workers} worker{'s' if self.workers != 1 else ''}, seed {self.seed})",
            f"  wall    : {self.wall_seconds:.2f} s "
            f"({self.traces_per_second:.0f} traces/s)",
            f"  acquire : {self.acquire_seconds:.2f} s (summed over workers)",
            f"  consume : {self.consume_seconds:.2f} s",
        ]
        if self.stage_seconds:
            split = ", ".join(
                f"{stage} {seconds:.2f} s"
                for stage, seconds in self.stage_seconds.items()
            )
            lines.append(f"  stages  : {split}")
        if self.store_path is not None:
            lines.append(
                f"  store   : {self.store_seconds:.2f} s -> {self.store_path}"
            )
        return "\n".join(lines)


class StreamingCampaign:
    """Chunked, parallel acquisition with pluggable streaming analysis.

    Parameters
    ----------
    spec:
        What to acquire from (see :class:`CampaignSpec`).
    chunk_size:
        Traces per chunk — the memory/scheduling granularity.
    workers:
        Process count; ``1`` runs inline (no pool, identical results).
    seed:
        Master seed of the campaign's ``SeedSequence`` tree.
    start_method:
        Optional ``multiprocessing`` start method (defaults to the
        platform's; ``"fork"`` on Linux keeps warmed plan caches shared).
    """

    def __init__(
        self,
        spec: CampaignSpec,
        chunk_size: int = 5000,
        workers: int = 1,
        seed: int = 0,
        start_method: Optional[str] = None,
    ):
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.spec = spec
        self.chunk_size = int(chunk_size)
        self.workers = int(workers)
        self.seed = int(seed)
        self.start_method = start_method

    def chunk_layout(self, n_traces: int) -> List[int]:
        """Chunk sizes for a campaign of ``n_traces`` (last may be short)."""
        if n_traces < 1:
            raise AcquisitionError("n_traces must be >= 1")
        sizes = [self.chunk_size] * (n_traces // self.chunk_size)
        if n_traces % self.chunk_size:
            sizes.append(n_traces % self.chunk_size)
        return sizes

    def _tasks(self, n_traces: int) -> List[_ChunkTask]:
        sizes = self.chunk_layout(n_traces)
        seeds = np.random.SeedSequence(self.seed).spawn(len(sizes))
        return [
            (index, size, seeds[index], self.spec)
            for index, size in enumerate(sizes)
        ]

    def run(
        self,
        n_traces: int,
        consumers: Sequence[TraceConsumer] = (),
        store: Union[ChunkedTraceStore, str, Path, None] = None,
        progress: Optional[ProgressCallback] = None,
    ) -> PipelineReport:
        """Acquire ``n_traces``, streaming chunks to consumers and store.

        ``store`` may be an open :class:`ChunkedTraceStore` or a path (a
        fresh store is created there).  Chunks are folded strictly in
        index order even when workers finish out of order.
        """
        tasks = self._tasks(n_traces)
        store_path: Optional[Path] = None
        if store is not None and not isinstance(store, ChunkedTraceStore):
            # Deferred: created from the first chunk, which knows the
            # sample period without building a throwaway device here.
            store_path, store = Path(store), None
        self.spec.warm_caches()

        started = time.perf_counter()
        acquire_s = consume_s = store_s = 0.0
        stage_s: Dict[str, float] = {}
        done = 0
        pool = None
        try:
            if self.workers == 1:
                results = map(_acquire_chunk, tasks)
            else:
                ctx = (
                    multiprocessing.get_context(self.start_method)
                    if self.start_method
                    else multiprocessing.get_context()
                )
                pool = ctx.Pool(processes=min(self.workers, len(tasks)))
                results = pool.imap(_acquire_chunk, tasks)
            for index, chunk, chunk_acquire_s in results:
                acquire_s += chunk_acquire_s
                for stage, seconds in chunk.metadata.get(
                    "stage_seconds", {}
                ).items():
                    stage_s[stage] = stage_s.get(stage, 0.0) + float(seconds)
                if store is not None or store_path is not None:
                    t0 = time.perf_counter()
                    if store is None:
                        store = ChunkedTraceStore.create(
                            store_path,
                            key=self.spec.key,
                            sample_period_ns=chunk.sample_period_ns,
                            metadata={
                                "target": self.spec.label(),
                                "seed": self.seed,
                                "chunk_size": self.chunk_size,
                            },
                        )
                    store.append(chunk)
                    store_s += time.perf_counter() - t0
                t0 = time.perf_counter()
                for consumer in consumers:
                    consumer.consume(chunk)
                consume_s += time.perf_counter() - t0
                done += chunk.n_traces
                if progress is not None:
                    progress(
                        ChunkProgress(
                            chunk_index=index,
                            n_chunks=len(tasks),
                            chunk_traces=chunk.n_traces,
                            done_traces=done,
                            total_traces=n_traces,
                            elapsed_seconds=time.perf_counter() - started,
                        )
                    )
        finally:
            if pool is not None:
                pool.close()
                pool.join()

        return PipelineReport(
            spec=self.spec,
            n_traces=done,
            chunk_size=self.chunk_size,
            n_chunks=len(tasks),
            workers=self.workers,
            seed=self.seed,
            wall_seconds=time.perf_counter() - started,
            acquire_seconds=acquire_s,
            consume_seconds=consume_s,
            store_seconds=store_s,
            results={c.name: c.result() for c in consumers},
            store_path=store.path if store is not None else None,
            stage_seconds=stage_s,
        )
