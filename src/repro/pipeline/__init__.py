"""Streaming campaign pipeline: paper-scale acquisition + analysis.

The scaling layer over ``repro.power``: campaigns are sharded into
chunks, acquired on a worker pool with per-chunk spawned RNG streams,
persisted to a :class:`~repro.store.ChunkedTraceStore`, and analysed by
incremental consumers (CPA, TVLA, completion-time statistics) — all in
memory bounded by the chunk size, with results independent of the worker
count.  See ``docs/pipeline.md`` for the architecture.

Long campaigns are fault tolerant: per-chunk worker retries with a
deterministic :class:`RetryPolicy`, graceful degradation to inline
execution when the pool dies, and atomic
:class:`~repro.pipeline.checkpoint.CampaignCheckpoint` files that let
:meth:`StreamingCampaign.resume` continue a killed run bit-identically.
See ``docs/robustness.md`` for the guarantees.
"""

from repro.pipeline.attack_consumers import (
    LatticeCpaConsumer,
    MiaStreamConsumer,
    MlpAttackConsumer,
    SuccessRateConsumer,
    TemplateAttackConsumer,
)
from repro.pipeline.checkpoint import CampaignCheckpoint
from repro.pipeline.consumers import (
    CompletionTimeConsumer,
    CompletionTimeStats,
    CpaBankConsumer,
    CpaStreamConsumer,
    TraceConsumer,
    TvlaStreamConsumer,
)
from repro.pipeline.engine import (
    ChunkProgress,
    PipelineReport,
    StreamingCampaign,
)
from repro.pipeline.retry import RetryPolicy
from repro.pipeline.spec import (
    CampaignSpec,
    campaign_targets,
    spec_from_dict,
    spec_to_dict,
)

__all__ = [
    "CampaignCheckpoint",
    "CampaignSpec",
    "campaign_targets",
    "spec_from_dict",
    "spec_to_dict",
    "ChunkProgress",
    "CompletionTimeConsumer",
    "CompletionTimeStats",
    "CpaBankConsumer",
    "CpaStreamConsumer",
    "LatticeCpaConsumer",
    "MiaStreamConsumer",
    "MlpAttackConsumer",
    "PipelineReport",
    "RetryPolicy",
    "StreamingCampaign",
    "SuccessRateConsumer",
    "TemplateAttackConsumer",
    "TraceConsumer",
    "TvlaStreamConsumer",
]
