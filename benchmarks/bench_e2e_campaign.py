"""Paper-scale end-to-end campaign: full-key CPA with success assertion.

The paper evaluates RFTC against CPA campaigns of up to 4M traces; this
script runs the whole reproduction stack at that scale — streaming
acquisition (shared-memory transport when available), float32 trace
synthesis, and the 16-byte incremental CPA bank — against the
*unprotected* target, then asserts that the attack actually recovers the
full last-round key.  It is the nightly-CI proof that the performance
work (see ``docs/performance.md``) kept the science intact: a throughput
number from a campaign whose attack fails would be meaningless.

Two modes (mirroring ``bench_pipeline_throughput.py``):

* ``python benchmarks/bench_e2e_campaign.py --quick`` — PR-gate smoke:
  16k traces (~2x the empirical full-recovery threshold at scale-1
  noise), seconds of wall clock.
* ``python benchmarks/bench_e2e_campaign.py`` — the nightly 4M-trace
  campaign (minutes).  ``--out`` writes a machine-readable report.

Exit status is 1 when any attacked key byte is wrong, so CI can gate on
it directly.
"""

import argparse
import json
import math
import sys
import time

from repro.attacks.models import expand_last_round_key
from repro.pipeline import CampaignSpec, CpaBankConsumer, StreamingCampaign

SCHEMA = "rftc-bench-e2e/1"

#: Paper-scale campaign length (full mode).
FULL_TRACES = 4_000_000

#: PR-smoke campaign length: ~2x the traces the unprotected target needs
#: for full 16-byte recovery at scale-1 noise (empirically 8k).
QUICK_TRACES = 16_000

#: "scale=1" noise of the experiment grid (see ``repro.cli``): the
#: baseline noise sigma 2.0 scaled by sqrt(10).
SCALE1_NOISE = 2.0 * math.sqrt(10.0)


def run_campaign(args) -> dict:
    """Run the campaign and return the JSON report (never raises on a
    failed attack — the failure is recorded in the report)."""
    spec = CampaignSpec(
        target="unprotected", noise_std=SCALE1_NOISE, dtype=args.dtype
    )
    campaign = StreamingCampaign(
        spec,
        chunk_size=args.chunk,
        workers=args.workers,
        seed=args.seed,
        transport=args.transport,
    )
    print(
        f"campaign: target=unprotected n={args.traces:,} dtype={args.dtype} "
        f"workers={args.workers} transport={args.transport} "
        f"chunk={args.chunk}"
    )
    t0 = time.perf_counter()
    report = campaign.run(
        args.traces, consumers=[CpaBankConsumer(engine=args.engine)]
    )
    wall = time.perf_counter() - t0

    result = report.results["cpa_bank"]
    rk10 = bytes(expand_last_round_key(spec.key))
    recovered = result.is_correct(rk10)
    wrong = [
        r.byte_index
        for r in result.byte_results
        if r.best_guess != rk10[r.byte_index]
    ]
    ranks = [int(r.rank_of(rk10[r.byte_index])) for r in result.byte_results]
    peak = [float(r.peak_corr[rk10[r.byte_index]]) for r in result.byte_results]

    print(
        f"{args.traces:,} traces in {wall:.1f}s "
        f"({args.traces / wall:,.0f} traces folded/s, "
        f"transport={report.transport})"
    )
    status = "RECOVERED" if recovered else f"FAILED (wrong bytes: {wrong})"
    print(
        f"full-key CPA: {status}  worst rank {max(ranks)}  "
        f"min true-key peak corr {min(peak):.4f}"
    )
    return {
        "schema": SCHEMA,
        "target": "unprotected",
        "n_traces": args.traces,
        "chunk_size": args.chunk,
        "workers": args.workers,
        "dtype": args.dtype,
        "engine": args.engine,
        "noise_std": SCALE1_NOISE,
        "seed": args.seed,
        "transport": report.transport,
        "wall_seconds": wall,
        "traces_folded_per_second": args.traces / wall,
        "key_recovered": bool(recovered),
        "wrong_bytes": wrong,
        "worst_rank": max(ranks),
        "min_true_key_peak_corr": min(peak),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Paper-scale end-to-end CPA campaign with key-recovery "
        "assertion"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI budget: {QUICK_TRACES:,} traces instead of "
             f"{FULL_TRACES:,}",
    )
    parser.add_argument(
        "--traces", type=int, default=None,
        help="override the campaign length",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="acquisition worker processes (default 2)",
    )
    parser.add_argument(
        "--chunk", type=int, default=5000,
        help="traces per chunk (default 5000)",
    )
    parser.add_argument(
        "--transport", choices=("auto", "shm", "pickle"), default="auto",
        help="chunk transport between workers and the fold loop",
    )
    parser.add_argument(
        "--dtype", choices=("float64", "float32"), default="float32",
        help="trace sample dtype (default float32, the paper-scale path)",
    )
    parser.add_argument(
        "--engine", choices=("fast", "reference"), default="fast",
        help="CPA bank engine (default fast)",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--out", default=None, help="write the JSON report here"
    )
    args = parser.parse_args(argv)
    if args.traces is None:
        args.traces = QUICK_TRACES if args.quick else FULL_TRACES

    report = run_campaign(args)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    if not report["key_recovered"]:
        print(
            f"FAILURE: CPA did not recover the key after "
            f"{args.traces:,} traces (wrong bytes: "
            f"{report['wrong_bytes']})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
