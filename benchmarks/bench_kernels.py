"""Micro-kernel benchmarks: the library's hot paths under real timing.

Two modes:

* ``pytest benchmarks/bench_kernels.py --benchmark-only`` — statistical
  timing of each kernel via pytest-benchmark (as before).
* ``python benchmarks/bench_kernels.py [--scale S] [--out FILE]
  [--check --baseline FILE]`` — the perf-regression harness: times the
  new kernels *and* the pre-PR reference implementations they replaced,
  writes machine-readable throughput + speedup numbers to
  ``BENCH_kernels.json``, and (with ``--check``) fails when a measured
  speedup regresses more than ``--tolerance`` (default 30%) against a
  committed baseline.

The regression gate compares *speedups* (new vs. reference measured in
the same process, same data), not absolute throughput, so the committed
baseline stays meaningful across machines.  See ``docs/performance.md``.
"""

import argparse
import json
import math
import sys
import time
from pathlib import Path

import numpy as np

from repro.attacks.cpa import CpaEngine, cpa_byte
from repro.attacks.models import last_round_hd_predictions
from repro.crypto.aes import AES, batch_expand_key
from repro.crypto.datapath import AesDatapath, batch_round_states
from repro.hw.clock import ClockSchedule
from repro.leakage_assessment.tvla import IncrementalTvla
from repro.pipeline import CampaignSpec, CpaBankConsumer, StreamingCampaign
from repro.power.synth import TraceSynthesizer
from repro.preprocess.dtw import batch_dtw_align
from repro.preprocess.fft import fft_magnitude
from repro.rftc import RFTCParams
from repro.rftc.planner import plan_overlap_free
from repro.utils.stats import column_pearson

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
RNG = np.random.default_rng(1)

SCHEMA = "rftc-bench-kernels/2"
DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_kernels.json"


# --------------------------------------------------------------------------
# Script mode: new-vs-reference kernel timing and the regression gate.
# --------------------------------------------------------------------------


def _time(fn, min_rounds=3, min_seconds=0.5):
    """Best-of-k wall time of ``fn()`` (k grows until both minima are met)."""
    fn()  # warm caches, allocators, BLAS threads
    best = float("inf")
    rounds = 0
    spent = 0.0
    while rounds < min_rounds or spent < min_seconds:
        t0 = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
        spent += elapsed
        rounds += 1
        if rounds >= 50:
            break
    return best


def _expand_keys_reference(keys):
    """The pre-PR per-trace key schedule: python expansion per unique key."""
    unique, inverse = np.unique(keys, axis=0, return_inverse=True)
    expanded = np.array(
        [
            [np.frombuffer(rk, dtype=np.uint8) for rk in AES(k.tobytes()).round_keys]
            for k in unique
        ]
    )
    return expanded[inverse]


def bench_synth(scale, rng):
    """Recursive-decay synthesis vs. the broadcast reference kernel."""
    n = max(64, int(2048 * scale))
    synth = TraceSynthesizer()
    sched = ClockSchedule.from_period_matrix(rng.uniform(21, 83, size=(n, 11)))
    amps = rng.uniform(40, 120, size=(n, 11))
    new_s = _time(lambda: synth.synthesize(sched, amps))
    ref_s = _time(lambda: synth.synthesize_reference(sched, amps))
    return {
        "shape": {"n_traces": n, "n_samples": synth.n_samples},
        "new_seconds": new_s,
        "ref_seconds": ref_s,
        "traces_per_second": n / new_s,
        "ref_traces_per_second": n / ref_s,
        "speedup": ref_s / new_s,
    }


def bench_cpa16(scale, rng):
    """Shared-moment 16-byte CPA vs. the per-byte ``cpa_byte`` loop."""
    n = max(256, int(8192 * scale))
    s = max(64, int(512 * scale))
    traces = rng.normal(size=(n, s))
    cts = rng.integers(0, 256, size=(n, 16), dtype=np.uint8)
    new_s = _time(lambda: CpaEngine(traces, cts).attack(), min_rounds=4)
    ref_s = _time(
        lambda: [cpa_byte(traces, cts, b) for b in range(16)], min_rounds=3
    )
    return {
        "shape": {"n_traces": n, "n_samples": s, "n_bytes": 16},
        "new_seconds": new_s,
        "ref_seconds": ref_s,
        "bytes_per_second": 16 / new_s,
        "ref_bytes_per_second": 16 / ref_s,
        "speedup": ref_s / new_s,
    }


def bench_key_schedule(scale, rng):
    """Vectorized AES-128 key schedule vs. per-key python expansion."""
    n = max(128, int(4096 * scale))
    keys = rng.integers(0, 256, size=(n, 16), dtype=np.uint8)
    new_s = _time(lambda: batch_expand_key(keys))
    ref_s = _time(lambda: _expand_keys_reference(keys), min_rounds=2)
    return {
        "shape": {"n_keys": n},
        "new_seconds": new_s,
        "ref_seconds": ref_s,
        "keys_per_second": n / new_s,
        "ref_keys_per_second": n / ref_s,
        "speedup": ref_s / new_s,
    }


def bench_datapath(scale, rng):
    """Absolute round-state throughput of the vectorized AES datapath."""
    n = max(256, int(8192 * scale))
    key = np.frombuffer(KEY, dtype=np.uint8)
    pts = rng.integers(0, 256, size=(n, 16), dtype=np.uint8)
    seconds = _time(lambda: batch_round_states(key, pts))
    return {
        "shape": {"n_traces": n},
        "new_seconds": seconds,
        "states_per_second": n * 11 / seconds,
    }


def bench_pipeline_e2e(scale, rng):
    """End-to-end campaign fold rate: float32 fast bank vs. float64 reference.

    Runs the full streaming pipeline — synthesis, acquisition, full-key
    ``CpaBankConsumer`` fold — at the paper's scale-1 noise
    (``noise_std = 2 * sqrt(10)``), once on the float32 fast path and
    once on the float64 reference bank.  The ratio is the e2e
    traces-folded-per-second speedup the 4M-trace campaigns ride on.
    """
    n = max(4000, int(16000 * scale))
    noise = 2.0 * math.sqrt(10.0)

    def run(dtype, engine):
        spec = CampaignSpec(
            target="rftc",
            m_outputs=1,
            p_configs=16,
            plan_seed=7,
            noise_std=noise,
            dtype=dtype,
        )
        campaign = StreamingCampaign(spec, chunk_size=2000, workers=1, seed=3)
        return campaign.run(n, consumers=[CpaBankConsumer(engine=engine)])

    # The two configurations are timed interleaved (new, ref, new, ref,
    # ...) so slow machine-speed drift — thermal throttling, co-tenant
    # load — cancels out of the ratio instead of landing entirely on
    # whichever side ran later.
    run("float32", "fast")  # warm caches, pair table, BLAS
    new_s = ref_s = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        run("float32", "fast")
        new_s = min(new_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run("float64", "reference")
        ref_s = min(ref_s, time.perf_counter() - t0)
    return {
        "shape": {"n_traces": n, "chunk_size": 2000, "noise_std": noise},
        "new_seconds": new_s,
        "ref_seconds": ref_s,
        "traces_folded_per_second": n / new_s,
        "ref_traces_folded_per_second": n / ref_s,
        "speedup": ref_s / new_s,
    }


KERNELS = {
    "synth": bench_synth,
    "cpa16": bench_cpa16,
    "key_schedule": bench_key_schedule,
    "datapath": bench_datapath,
    "pipeline_e2e": bench_pipeline_e2e,
}


def run_suite(scale):
    kernels = {}
    for name, fn in KERNELS.items():
        kernels[name] = fn(scale, np.random.default_rng(1))
        line = f"{name:13s} new {kernels[name]['new_seconds'] * 1e3:9.2f} ms"
        if "ref_seconds" in kernels[name]:
            line += (
                f"   ref {kernels[name]['ref_seconds'] * 1e3:9.2f} ms"
                f"   speedup {kernels[name]['speedup']:.2f}x"
            )
        print(line)
    return {"schema": SCHEMA, "scale": scale, "kernels": kernels}


def check_regressions(measured, baseline, tolerance):
    """Compare measured speedups against a committed baseline.

    Returns a list of failure strings (empty == gate passes).  Only the
    speedup ratios are compared — absolute throughput is machine-bound —
    and only for kernels present in both reports at the same scale.
    """
    failures = []
    if baseline.get("schema") != SCHEMA:
        return [f"baseline schema mismatch: {baseline.get('schema')!r}"]
    if abs(baseline.get("scale", 1.0) - measured["scale"]) > 1e-9:
        return [
            "baseline recorded at scale "
            f"{baseline.get('scale')} but measured at {measured['scale']}; "
            "re-run with a matching --scale"
        ]
    for name, entry in measured["kernels"].items():
        base = baseline["kernels"].get(name)
        if base is None or "speedup" not in entry or "speedup" not in base:
            continue
        floor = base["speedup"] * (1.0 - tolerance)
        if entry["speedup"] < floor:
            failures.append(
                f"{name}: speedup {entry['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {base['speedup']:.2f}x - "
                f"{tolerance:.0%} tolerance)"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Kernel throughput benchmark + regression gate"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="problem-size multiplier (default 1.0)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="write the JSON report here (e.g. BENCH_kernels.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) on speedup regression vs. --baseline",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline JSON for --check (default: committed BENCH_kernels.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional speedup regression (default 0.30)",
    )
    args = parser.parse_args(argv)

    measured = run_suite(args.scale)
    if args.out is not None:
        args.out.write_text(json.dumps(measured, indent=2) + "\n")
        print(f"wrote {args.out}")
    if args.check:
        if not args.baseline.exists():
            print(f"no baseline at {args.baseline}; cannot check", file=sys.stderr)
            return 1
        failures = check_regressions(
            measured, json.loads(args.baseline.read_text()), args.tolerance
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("regression gate: ok")
    return 0


# --------------------------------------------------------------------------
# Pytest mode: statistical micro-kernel timing (pytest-benchmark).
# --------------------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - pytest always present in dev env
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def plaintexts():
        return RNG.integers(0, 256, size=(4096, 16), dtype=np.uint8)

    @pytest.fixture(scope="module")
    def traces():
        return RNG.normal(size=(2048, 256))

    def test_kernel_batch_aes(benchmark, plaintexts):
        key = np.frombuffer(KEY, dtype=np.uint8)
        out = benchmark(batch_round_states, key, plaintexts)
        assert out.shape == (4096, 11, 16)

    def test_kernel_batch_key_schedule(benchmark):
        keys = RNG.integers(0, 256, size=(4096, 16), dtype=np.uint8)
        out = benchmark(batch_expand_key, keys)
        assert out.shape == (4096, 11, 16)

    def test_kernel_batch_hamming(benchmark, plaintexts):
        dp = AesDatapath(KEY)
        out = benchmark(dp.batch_hamming_distances, plaintexts)
        assert out.shape == (4096, 11)

    def test_kernel_trace_synthesis(benchmark):
        synth = TraceSynthesizer()
        sched = ClockSchedule.from_period_matrix(
            RNG.uniform(21, 83, size=(2048, 11))
        )
        amps = RNG.uniform(40, 120, size=(2048, 11))
        out = benchmark(synth.synthesize, sched, amps)
        assert out.shape == (2048, 256)

    def test_kernel_cpa_correlation(benchmark, traces):
        cts = RNG.integers(0, 256, size=(2048, 16), dtype=np.uint8)
        preds = last_round_hd_predictions(cts, 0).astype(np.float64)

        out = benchmark(column_pearson, preds, traces)
        assert out.shape == (256, 256)

    def test_kernel_cpa_engine_full_key(benchmark, traces):
        cts = RNG.integers(0, 256, size=(2048, 16), dtype=np.uint8)

        def run():
            return CpaEngine(traces, cts).attack()

        result = benchmark(run)
        assert len(result.byte_results) == 16

    def test_kernel_batch_dtw(benchmark, traces):
        ref = traces[:256, ::2].mean(axis=0)
        out = benchmark(batch_dtw_align, traces[:256, ::2], ref, 32)
        assert out.shape == (256, 128)

    def test_kernel_fft_preprocess(benchmark, traces):
        out = benchmark(fft_magnitude, traces, 128)
        assert out.shape == (2048, 128)

    def test_kernel_tvla_update(benchmark, traces):
        def run():
            tvla = IncrementalTvla()
            tvla.update_fixed(traces[:1024])
            tvla.update_random(traces[1024:])
            return tvla.result()

        result = benchmark(run)
        assert result.t_values.shape == (256,)

    def test_kernel_frequency_planning(benchmark):
        params = RFTCParams(m_outputs=3, p_configs=32)

        def run():
            return plan_overlap_free(params, rng=np.random.default_rng(3))

        plan = benchmark(run)
        assert plan.n_sets == 32


if __name__ == "__main__":
    sys.exit(main())
