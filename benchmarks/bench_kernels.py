"""Micro-kernel benchmarks: the library's hot paths under real timing.

Unlike the figure benchmarks (one deterministic regeneration each), these
use pytest-benchmark's statistical timing to track the throughput of the
kernels everything else is built from: batch AES, trace synthesis, CPA
correlation, batched DTW, TVLA accumulation, and frequency planning.
"""

import numpy as np
import pytest

from repro.attacks.models import last_round_hd_predictions
from repro.crypto.datapath import AesDatapath, batch_round_states
from repro.hw.clock import ClockSchedule
from repro.leakage_assessment.tvla import IncrementalTvla
from repro.power.synth import TraceSynthesizer
from repro.preprocess.dtw import batch_dtw_align
from repro.preprocess.fft import fft_magnitude
from repro.rftc import RFTCParams
from repro.rftc.planner import plan_overlap_free
from repro.utils.stats import column_pearson

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
RNG = np.random.default_rng(1)


@pytest.fixture(scope="module")
def plaintexts():
    return RNG.integers(0, 256, size=(4096, 16), dtype=np.uint8)


@pytest.fixture(scope="module")
def traces():
    return RNG.normal(size=(2048, 256))


def test_kernel_batch_aes(benchmark, plaintexts):
    key = np.frombuffer(KEY, dtype=np.uint8)
    out = benchmark(batch_round_states, key, plaintexts)
    assert out.shape == (4096, 11, 16)


def test_kernel_batch_hamming(benchmark, plaintexts):
    dp = AesDatapath(KEY)
    out = benchmark(dp.batch_hamming_distances, plaintexts)
    assert out.shape == (4096, 11)


def test_kernel_trace_synthesis(benchmark):
    synth = TraceSynthesizer()
    sched = ClockSchedule.from_period_matrix(
        RNG.uniform(21, 83, size=(2048, 11))
    )
    amps = RNG.uniform(40, 120, size=(2048, 11))
    out = benchmark(synth.synthesize, sched, amps)
    assert out.shape == (2048, 256)


def test_kernel_cpa_correlation(benchmark, traces):
    cts = RNG.integers(0, 256, size=(2048, 16), dtype=np.uint8)
    preds = last_round_hd_predictions(cts, 0).astype(np.float64)

    out = benchmark(column_pearson, preds, traces)
    assert out.shape == (256, 256)


def test_kernel_batch_dtw(benchmark, traces):
    ref = traces[:256, ::2].mean(axis=0)
    out = benchmark(batch_dtw_align, traces[:256, ::2], ref, 32)
    assert out.shape == (256, 128)


def test_kernel_fft_preprocess(benchmark, traces):
    out = benchmark(fft_magnitude, traces, 128)
    assert out.shape == (2048, 128)


def test_kernel_tvla_update(benchmark, traces):
    def run():
        tvla = IncrementalTvla()
        tvla.update_fixed(traces[:1024])
        tvla.update_random(traces[1024:])
        return tvla.result()

    result = benchmark(run)
    assert result.t_values.shape == (256,)


def test_kernel_frequency_planning(benchmark):
    params = RFTCParams(m_outputs=3, p_configs=32)

    def run():
        return plan_overlap_free(params, rng=np.random.default_rng(3))

    plan = benchmark(run)
    assert plan.n_sets == 32
