"""Figure 6: TVLA of RFTC(M, P) for M in {1, 2, 3}, P in {4, 1024}.

Paper verdicts (one million traces): M = 1 leaks far beyond +-4.5 for both
P; M = 2 grazes the limit (P = 4 slightly over, P = 1024 nearly within);
M = 3 stays within except during plaintext load.  Larger P lowers the
leakage at every M.

Budget note: Welch's t grows with sqrt(n) for any nonzero leakage, so the
threshold verdicts are budget-relative; the default 8,000 traces/group is
the point where this synthetic channel (which is deliberately hotter than
the paper's bench — see DESIGN.md) grades the builds the way the paper's
500k/group grades its hardware.  The *ordering* across M and P is
budget-invariant and is what the assertions pin.
"""

from benchmarks._budget import run_once, scaled
from repro.experiments.figures import figure6_data, tvla_unprotected
from repro.experiments.reporting import render_tvla_summary


def test_figure6_tvla(benchmark):
    n = scaled(8000)

    def run():
        panels = figure6_data(
            m_values=(1, 2, 3),
            p_values=(4, 1024),
            n_per_group=n,
            seed=17,
        )
        panels["unprotected"] = tvla_unprotected(
            n_per_group=min(n, 5000), seed=19
        )
        return panels

    panels = run_once(benchmark, run)
    print()
    print(f"Figure 6: TVLA at {n} traces/group (paper: 500k/group)")
    print(render_tvla_summary(panels))
    print("paper: M=1 leaks (|t| up to ~50); M=2 grazes 4.5; M=3 within 4.5")

    t = {label: panel.result.max_abs_t for label, panel in panels.items()}
    # Shape: unprotected is worst; leakage decreases with M at fixed P.
    assert t["unprotected"] > t["RFTC(1, 4)"]
    assert t["RFTC(1, 4)"] > t["RFTC(3, 4)"]
    assert t["RFTC(1, 1024)"] > t["RFTC(3, 1024)"] * 0.8
    # M = 1 exceeds the threshold; M = 3 stays within it (after load).
    assert t["RFTC(1, 4)"] > 4.5
    assert panels["RFTC(3, 1024)"].result.passes
