"""Ablation: random-number-generator quality (the paper's Assumptions).

The paper assumes the 128-bit LFSR's selections are "sufficiently random".
This ablation runs RFTC(1, 256) with the real 128-bit LFSR against a
crippled 8-bit LFSR whose short period revisits only a sliver of the
configuration space, and measures how many distinct frequency sets (and
therefore completion times) each actually exercises — the randomness budget
the countermeasure's security rests on.
"""

import numpy as np

from benchmarks._budget import run_once, scaled
from repro.experiments.reporting import format_table
from repro.hw.lfsr import FibonacciLfsr, Lfsr128
from repro.rftc import RFTCController, RFTCParams
from repro.rftc.planner import plan_overlap_free

PARAMS = RFTCParams(m_outputs=1, p_configs=256)


def _distinct_sets(rng_source, plan, n):
    ctrl = RFTCController(PARAMS, plan, rng=rng_source)
    sched = ctrl.schedule(n)
    sets = sched.metadata["set_indices"]
    times = np.round(sched.completion_times_ns(), 6)
    return {
        "distinct_sets": int(np.unique(sets).size),
        "distinct_times": int(np.unique(times).size),
        "max_identical": int(np.bincount(sets).max()),
    }


def test_ablation_rng_quality(benchmark):
    n = scaled(20000)

    def run():
        plan = plan_overlap_free(PARAMS, rng=np.random.default_rng(61))
        good = _distinct_sets(Lfsr128(seed=0xFEED_BEEF), plan, n)
        # A 4-bit LFSR's bit stream has period 15, so the 8-bit words the
        # set selector consumes cycle through at most 15 distinct values —
        # most of the 256-entry ROM is never addressed.
        bad = _distinct_sets(FibonacciLfsr(4, seed=0x9), plan, n)
        return {"good": good, "bad": bad}

    out = run_once(benchmark, run)
    print()
    rows = [
        (
            name,
            stats["distinct_sets"],
            stats["distinct_times"],
            stats["max_identical"],
        )
        for name, stats in (("128-bit LFSR", out["good"]), ("4-bit LFSR", out["bad"]))
    ]
    print(
        format_table(
            ["generator", "distinct sets used", "distinct times", "worst set reuse"],
            rows,
        )
    )
    print("Assumptions (Sec. 2): weak generators forfeit the randomness budget.")
    assert out["good"]["distinct_sets"] > out["bad"]["distinct_sets"]
    assert out["good"]["distinct_times"] > out["bad"]["distinct_times"]
