"""Ablation: oscilloscope bandwidth (the paper's 100 MHz Agilent limit).

The measurement bandwidth shapes both sides of the arms race: a wider band
sharpens the per-round pulses (more signal for CPA against the unprotected
core) and sharpens the *misalignment* (a faster-decaying pulse overlaps a
mispositioned correlation window less).  This ablation measures CPA's peak
correlation on the unprotected core and DTW-CPA's key rank against
RFTC(1, 4) at three scope bandwidths.
"""


from benchmarks._budget import run_once, scaled
from repro.attacks.cpa import cpa_byte
from repro.attacks.models import expand_last_round_key
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import DEFAULT_KEY, build_rftc
from repro.baselines import UnprotectedClock
from repro.power.acquisition import AcquisitionCampaign, ProtectedAesDevice
from repro.power.scope import Oscilloscope
from repro.preprocess import DtwAligner

BANDWIDTHS = (20.0, 100.0, 500.0)


def _unprotected_peak(bandwidth_mhz: float, n: int) -> float:
    device = ProtectedAesDevice(
        DEFAULT_KEY,
        UnprotectedClock(),
        scope=Oscilloscope(bandwidth_mhz=bandwidth_mhz),
    )
    ts = AcquisitionCampaign(device, seed=71).collect(n)
    rk10 = expand_last_round_key(ts.key)
    result = cpa_byte(ts.traces, ts.ciphertexts, 0)
    return float(result.peak_corr[rk10[0]])


def _rftc_dtw_rank(bandwidth_mhz: float, n: int) -> int:
    scenario = build_rftc(1, 4, seed=73, noise_std=2.0)
    scenario.device.scope = Oscilloscope(bandwidth_mhz=bandwidth_mhz)
    ts = AcquisitionCampaign(scenario.device, seed=74).collect(n)
    rk10 = expand_last_round_key(ts.key)
    warped = DtwAligner()(ts.traces)
    return cpa_byte(warped, ts.ciphertexts, 0).rank_of(rk10[0])


def test_ablation_scope_bandwidth(benchmark):
    n = scaled(4000)

    def run():
        return {
            bw: {
                "cpa_peak": _unprotected_peak(bw, n),
                "dtw_rank": _rftc_dtw_rank(bw, n),
            }
            for bw in BANDWIDTHS
        }

    out = run_once(benchmark, run)
    print()
    rows = [
        (f"{bw:.0f} MHz", f"{v['cpa_peak']:.3f}", v["dtw_rank"])
        for bw, v in out.items()
    ]
    print(
        format_table(
            ["scope bandwidth", "CPA peak corr (unprotected)", "DTW-CPA rank vs RFTC(1,4)"],
            rows,
        )
    )
    # Starving the bandwidth starves the attacker.
    assert out[20.0]["cpa_peak"] < out[500.0]["cpa_peak"]
