"""Figure 5: the attack battery against RFTC(2, P).

Paper shape: with two clock outputs per round, CPA / PCA-CPA / FFT-CPA fail
for every P; DTW-CPA still breaks the small-P builds (P = 4, 16).  The
within-encryption randomization is what disarms the spectral and projection
attacks that still worked at M = 1.
"""

from benchmarks._budget import run_once, scaled
from repro.experiments.figures import figure5_data
from repro.experiments.reporting import format_table

P_VALUES = (4, 16, 64, 256, 1024)


def test_figure5_attacks_on_rftc_m2(benchmark):
    n = scaled(8000)
    counts = tuple(c for c in (2000, 4000, 8000) if c <= n)

    def run():
        return figure5_data(
            p_values=P_VALUES,
            n_traces=n,
            trace_counts=counts,
            n_repeats=4,
            seed=47,
        )

    results = run_once(benchmark, run)

    print()
    print(f"Figure 5: SR / mean rank at n={counts[-1]} traces, RFTC(2, P)")
    rows = []
    for p in P_VALUES:
        row = [p]
        for curve in results[p].curves.values():
            row.append(
                f"{curve.success_rates[-1]:.2f} / {curve.mean_ranks[-1]:.0f}"
            )
        rows.append(row)
    print(
        format_table(
            ["P"] + [f"{a} SR/rank" for a in results[P_VALUES[0]].curves], rows
        )
    )
    print("paper: only DTW-CPA succeeds, and only for P = 4 and 16")

    def rank(p, attack):
        return results[p].curves[attack].mean_ranks[-1]

    # Shape: M = 2 resists plain CPA everywhere (no disclosure at budget).
    for p in P_VALUES:
        assert results[p].curves["cpa"].success_rates[-1] < 0.75
    # DTW still makes the most progress on the smallest P.
    assert rank(4, "dtw-cpa") < rank(1024, "dtw-cpa") + 64
