"""Beyond the paper: the profiled (template) and model-free (MIA) adversaries.

The paper grades RFTC against CPA-family attacks; a natural referee
question is whether a *stronger* adversary — one who can profile an
identical device, or one free of the linear-leakage assumption — changes
the verdict.  This benchmark runs Gaussian template attacks and MIA against
the unprotected core and RFTC(2, 16):

* both break the unprotected core (templates with ~10x fewer traces than
  CPA — the classic profiled advantage);
* both are diluted by clock randomization exactly like CPA, because
  misalignment starves *any* per-sample statistic.
"""


from benchmarks._budget import run_once, scaled
from repro.attacks.mia import mia_byte
from repro.attacks.models import expand_last_round_key
from repro.attacks.template import build_templates, template_rank
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import build_rftc, build_unprotected
from repro.power.acquisition import AcquisitionCampaign


def _evaluate(scenario, seed, n):
    campaign = AcquisitionCampaign(scenario.device, seed=seed)
    ts = campaign.collect(n)
    rk10 = expand_last_round_key(ts.key)
    half = ts.n_traces // 2
    model = build_templates(
        ts.traces[:half], ts.ciphertexts[:half], rk10[0], byte_index=0
    )
    t_rank = template_rank(
        model, ts.traces[half:], ts.ciphertexts[half:], rk10[0]
    )
    mia = mia_byte(ts.traces, ts.ciphertexts, 0, sample_stride=4)
    return {"template": t_rank, "mia": mia.rank_of(rk10[0])}


def test_profiled_and_model_free_adversaries(benchmark):
    n = scaled(5000)

    def run():
        return {
            "unprotected": _evaluate(build_unprotected(), 31, n),
            "RFTC(2, 16)": _evaluate(build_rftc(2, 16, seed=32), 33, n),
        }

    out = run_once(benchmark, run)
    print()
    rows = [
        (name, r["template"], r["mia"]) for name, r in out.items()
    ]
    print(
        format_table(
            ["target", "template-attack rank", "MIA rank"], rows
        )
    )
    print(
        "stronger adversaries do not change the verdict: misalignment "
        "starves per-sample statistics regardless of the distinguisher."
    )
    assert out["unprotected"]["template"] == 0
    assert out["unprotected"]["mia"] <= 2
    assert out["RFTC(2, 16)"]["template"] > 0
    assert out["RFTC(2, 16)"]["mia"] > 0
