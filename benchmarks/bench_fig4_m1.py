"""Figure 4: CPA / PCA-CPA / DTW-CPA / FFT-CPA against RFTC(1, P).

The paper's shape (per panel, x up to 10^6 traces):
  (a) CPA      — breaks only P = 4 (~700k traces);
  (b) PCA-CPA  — like CPA;
  (c) DTW-CPA  — breaks P = 4/16/64 (<200k), P = 256 (~800k), not P = 1024;
  (d) FFT-CPA  — breaks P = 4/16 (~800k).

At model scale (the synthetic channel breaks the unprotected core at ~2k
traces, and the benchmark budget is ~8k traces per build), the reproduction
target is the *ordering*: small P falls to the preprocessed attacks first,
large P resists everything, DTW/FFT dominate plain CPA.
"""


from benchmarks._budget import run_once, scaled
from repro.experiments.figures import figure4_data
from repro.experiments.reporting import format_table

P_VALUES = (4, 16, 64, 256, 1024)


def test_figure4_attacks_on_rftc_m1(benchmark):
    n = scaled(8000)
    counts = tuple(c for c in (2000, 4000, 8000) if c <= n)

    def run():
        return figure4_data(
            p_values=P_VALUES,
            n_traces=n,
            trace_counts=counts,
            n_repeats=4,
            seed=7,
        )

    results = run_once(benchmark, run)

    print()
    print(f"Figure 4: SR at n={counts} traces, RFTC(1, P) (paper x-axis: 1e6)")
    header = ["P"] + [f"{a} SR@{counts[-1]}" for a in results[P_VALUES[0]].curves]
    rows = []
    for p in P_VALUES:
        row = [p]
        for curve in results[p].curves.values():
            row.append(f"{curve.success_rates[-1]:.2f}")
        rows.append(row)
    print(format_table(header, rows))
    mean_rank_rows = []
    for p in P_VALUES:
        row = [p]
        for curve in results[p].curves.values():
            row.append(f"{curve.mean_ranks[-1]:.0f}")
        mean_rank_rows.append(row)
    print(format_table(["P"] + [f"{a} rank" for a in results[P_VALUES[0]].curves], mean_rank_rows))

    # Shape assertions: preprocessed attacks make more progress on small P
    # than large P (rank of the true key byte, lower = closer to broken).
    def rank(p, attack):
        return results[p].curves[attack].mean_ranks[-1]

    assert rank(4, "fft-cpa") < rank(1024, "fft-cpa")
    assert rank(4, "dtw-cpa") < rank(1024, "dtw-cpa")
    # FFT/DTW must beat plain CPA on the easiest build — the paper's
    # conclusion that realignment preprocessing is the real threat.
    assert min(rank(4, "fft-cpa"), rank(4, "dtw-cpa")) < rank(4, "cpa") + 32
