"""Figure 3: completion-time histograms of unprotected vs RFTC(3, 1024).

Regenerates the three panels — (a) constant 48 MHz clock, (b) the naive
consecutive-grid frequency assignment, (c) the overlap-free plan — and
prints the statistics the paper reads off them: the single 208.33 ns spike,
the concentrated peaks of (b), and (c)'s "<130 identical completion times
per million encryptions".
"""


from benchmarks._budget import run_once, scaled
from repro.experiments.figures import figure3_data
from repro.experiments.reporting import format_table
from repro.rftc.completion import collision_statistics


def test_figure3_completion_histograms(benchmark):
    n = scaled(200_000)

    def run():
        return figure3_data(
            m_outputs=3, p_configs=1024, n_encryptions=n, seed=33
        )

    data = run_once(benchmark, run)

    rows = []
    for key in ("a_unprotected", "b_naive", "c_careful"):
        panel = data[key]
        coarse_peak, _ = collision_statistics(panel.times_ns, 0.5)
        scaled_identical = panel.max_identical * (1_000_000 / n)
        rows.append(
            (
                panel.label,
                f"{panel.times_ns.min():.2f}",
                f"{panel.times_ns.max():.2f}",
                panel.occupied_buckets,
                panel.max_identical,
                f"{scaled_identical:.0f}",
                coarse_peak,
            )
        )
    print()
    print(f"Figure 3 ({n} encryptions; paper: 1,000,000)")
    print(
        format_table(
            [
                "panel",
                "min ns",
                "max ns",
                "distinct times",
                "max identical",
                "scaled to 1M",
                "peak @0.5ns bin",
            ],
            rows,
        )
    )
    print(
        "paper: (a) one spike at 208.33 ns; (b) concentrated peaks; "
        "(c) <130 identical per 1M, range 208.33-833.32 ns"
    )

    # Shape assertions: the reproduction target.
    assert data["a_unprotected"].occupied_buckets == 1
    assert data["c_careful"].occupied_buckets > 2 * data["b_naive"].occupied_buckets
    assert data["c_careful"].max_identical * (1_000_000 / n) < 400
