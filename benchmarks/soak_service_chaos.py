"""Chaos soak: flood the campaign service while injecting system faults.

Every fault class from ``repro.testing.faults`` hits a live deployment
in one run — disk exhaustion inside store jobs (``enospc@k``), a torn
journal tail across a daemon restart, shared-memory allocation failure
mid-campaign (``shm-alloc-fail@k``), a slow-loris client, and a stalled
HTTP front-end under active waiters — and the harness then audits the
wreckage:

* **zero stuck jobs** — every submitted job reaches a terminal state;
* **zero leaked segments** — ``/dev/shm`` holds no ``rftc-shm-*`` ring
  the run created;
* **zero quota drift** — per-tenant store accounting equals the bytes
  actually persisted, with ENOSPC-failed jobs charging nothing;
* **bit-identical results** — every job that succeeded under chaos
  returns exactly the payload a fault-free reference service computed.

Modes::

    python benchmarks/soak_service_chaos.py            # full soak
    python benchmarks/soak_service_chaos.py --quick    # CI budget
    python benchmarks/soak_service_chaos.py --out SOAK_chaos.json
"""

import argparse
import json
import socket
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.errors import ServiceError
from repro.pipeline import CampaignSpec, CpaStreamConsumer, StreamingCampaign
from repro.pipeline import shm as shm_transport
from repro.service import CampaignService, JobStore
from repro.service.client import ServiceClient
from repro.service.server import CampaignServer
from repro.testing.faults import FaultPlan, tear_journal_tail

SCHEMA = "rftc-soak-chaos/1"
TENANTS = ("alice", "bob", "carol")
TERMINAL = ("done", "failed", "cancelled")


class SoakFailure(RuntimeError):
    pass


def check(condition, message):
    if not condition:
        raise SoakFailure(message)


def small_spec():
    return CampaignSpec(target="rftc", m_outputs=1, p_configs=16, plan_seed=7)


def job_plan(job):
    """Deterministic fault targeting: every third store job hits ENOSPC."""
    if job.store and job.requested_seed % 3 == 0:
        return FaultPlan.parse("enospc@1")
    return None


def is_enospc_target(seed, store):
    return store and seed % 3 == 0


def reference_results(n_jobs, n_traces, chunk_size, data_dir):
    """Fault-free ground truth: (tenant, seed) -> result payload."""
    service = CampaignService(data_dir, worker_budget=2)
    service.start()
    try:
        jobs = {}
        for i in range(n_jobs):
            tenant = TENANTS[i % len(TENANTS)]
            store = i % 2 == 1
            if is_enospc_target(i, store):
                continue  # chaos will fail these; no ground truth needed
            job = service.submit(
                small_spec(), n_traces, chunk_size=chunk_size, seed=i,
                tenant=tenant, store=store,
            )
            jobs[(tenant, i)] = job.job_id
        check(service.join(timeout=600), "reference drain timed out")
        return {
            key: service.result(job_id) for key, job_id in jobs.items()
        }
    finally:
        service.shutdown()


def submit_with_shed_retry(client, n_traces, chunk_size, seed, tenant, store,
                           stats):
    """Submit, honouring 503 + Retry-After like a well-behaved client."""
    for _attempt in range(50):
        try:
            return client.submit(
                small_spec(), n_traces, chunk_size=chunk_size, seed=seed,
                tenant=tenant, store=store,
            )
        except ServiceError as exc:
            if "503" not in str(exc):
                raise
            stats["sheds_seen"] += 1
            time.sleep(0.1)
    raise SoakFailure("service never drained below the shed bound")


def slow_loris_phase(host, port, stats):
    """A stalled request must be cut off with 408, not hold a slot."""
    with socket.create_connection((host, port), timeout=30.0) as sock:
        sock.sendall(
            b"POST /v1/jobs HTTP/1.1\r\nHost: soak\r\nContent-Length: 64\r\n\r\n"
        )
        response = sock.recv(65536)
    check(response.startswith(b"HTTP/1.1 408 "),
          f"slow-loris got {response[:40]!r}, wanted 408")
    stats["slow_client_408"] = True


def stalled_server_phase(service, server, host, port, client, job_id, stats):
    """Kill and restart the HTTP front-end under an active waiter."""
    server.stop()
    outcome = {}

    def _wait():
        try:
            outcome["doc"] = client.wait(job_id, timeout=120.0, jitter_seed=1)
        except Exception as exc:  # noqa: BLE001 - audited below
            outcome["error"] = exc

    waiter = threading.Thread(target=_wait)
    waiter.start()
    time.sleep(0.5)  # the waiter is polling a dead port now
    restarted = CampaignServer(
        service, host=host, port=port, read_timeout_s=0.5
    )
    restarted.start()
    waiter.join(timeout=120.0)
    check(not waiter.is_alive(), "waiter wedged across the server restart")
    check("error" not in outcome,
          f"wait failed across restart: {outcome.get('error')}")
    check(outcome["doc"]["state"] in TERMINAL,
          f"job {job_id} not terminal after restart")
    stats["stalled_server_survived"] = True
    return restarted


def chaos_service_phase(n_jobs, n_traces, chunk_size, data_dir, stats,
                        reference):
    service = CampaignService(
        data_dir, worker_budget=2, shed_queue_depth=max(4, n_jobs // 4),
        job_faults=job_plan,
    )
    service.start()
    server = CampaignServer(service, read_timeout_s=0.5)
    host, port = server.start()
    client = ServiceClient(host, port)
    submitted = []  # (tenant, seed, store, job_id)
    try:
        for i in range(n_jobs):
            tenant = TENANTS[i % len(TENANTS)]
            store = i % 2 == 1
            doc = submit_with_shed_retry(
                client, n_traces, chunk_size, i, tenant, store, stats
            )
            submitted.append((tenant, i, store, doc["job_id"]))

        slow_loris_phase(host, port, stats)
        server = stalled_server_phase(
            service, server, host, port, client, submitted[-1][3], stats
        )

        check(service.join(timeout=600), "chaos drain timed out")
        check(client.ready(), "service still shedding after the drain")

        # -- audit -----------------------------------------------------
        expected_bytes = dict.fromkeys(TENANTS, 0)
        for tenant, seed, store, job_id in submitted:
            doc = service.status(job_id)
            check(doc["state"] in TERMINAL,
                  f"job {job_id} stuck in state {doc['state']}")
            if is_enospc_target(seed, store):
                stats["enospc_failed_jobs"] += 1
                check(doc["state"] == "failed",
                      f"ENOSPC job {job_id} ended {doc['state']}, not failed")
                check("out of disk" in (doc["error"] or ""),
                      f"ENOSPC job {job_id} failed for the wrong reason: "
                      f"{doc['error']!r}")
                check(doc["store_bytes"] == 0,
                      f"failed job {job_id} still charges "
                      f"{doc['store_bytes']} bytes")
                partial = Path(data_dir) / "stores" / tenant / job_id
                check(not partial.exists(),
                      f"failed job {job_id} left a partial store behind")
            else:
                check(doc["state"] == "done",
                      f"job {job_id} ended {doc['state']}, not done")
                expected_bytes[tenant] += doc["store_bytes"]
                result = service.result(job_id)
                check(result == reference[(tenant, seed)],
                      f"job {job_id} result drifted from the fault-free "
                      f"reference")
                stats["bit_identical_results"] += 1
        for tenant in TENANTS:
            usage = service.store_usage(tenant)
            check(usage == expected_bytes[tenant],
                  f"tenant {tenant} quota drift: charged {usage}, "
                  f"persisted {expected_bytes[tenant]}")
        stats["quota_drift_bytes"] = 0
    finally:
        server.stop()
        service.shutdown()
    return submitted


def torn_journal_phase(data_dir, submitted, stats):
    """Tear the journal tail, restart, and demand full recovery."""
    journal = Path(data_dir) / "jobs.jsonl"
    tear_journal_tail(journal, keep_fraction=0.5)
    probe = JobStore(journal)
    check(probe.torn_line is not None, "journal tear was not detected")
    probe.close()
    stats["journal_torn_repaired"] = True

    # The torn final record was one job's terminal update; recovery must
    # requeue and re-run it, then compaction shrinks the journal.
    service = CampaignService(data_dir, worker_budget=2, job_faults=job_plan,
                              compact_journal=True)
    service.start()
    try:
        check(service.join(timeout=600), "post-tear drain timed out")
        for _tenant, _seed, _store, job_id in submitted:
            state = service.status(job_id)["state"]
            check(state in TERMINAL,
                  f"job {job_id} stuck in {state} after journal tear")
        compacted = service.metrics.counter_value(
            "service_journal_compactions_total"
        )
        check(compacted == 1, "restart did not compact the journal")
        stats["post_tear_stuck_jobs"] = 0
    finally:
        service.shutdown()


def shm_chaos_phase(n_traces, chunk_size, stats):
    """Mid-campaign shm allocation failure must degrade bit-identically."""
    if not shm_transport.shm_available():
        stats["shm_degraded_bit_identical"] = "skipped (no /dev/shm)"
        return
    spec = CampaignSpec(target="unprotected", noise_std=2.0)

    def run(**kwargs):
        engine = StreamingCampaign(
            spec, chunk_size=chunk_size, seed=11, **kwargs
        )
        return engine.run(
            n_traces, consumers=[CpaStreamConsumer(byte_index=0)]
        )

    baseline = run(workers=1)
    report = run(
        workers=2, transport="shm", faults=FaultPlan.parse("shm-alloc-fail@1")
    )
    check(report.transport_degraded,
          "shm fault did not degrade the transport")
    check(
        np.array_equal(
            report.results["cpa[0]"].peak_corr,
            baseline.results["cpa[0]"].peak_corr,
        ),
        "degraded transport changed the science",
    )
    stats["shm_degraded_bit_identical"] = True


def run_soak(n_jobs, n_traces, chunk_size):
    stats = {
        "sheds_seen": 0,
        "enospc_failed_jobs": 0,
        "bit_identical_results": 0,
        "slow_client_408": False,
        "stalled_server_survived": False,
        "journal_torn_repaired": False,
        "post_tear_stuck_jobs": None,
        "quota_drift_bytes": None,
        "shm_degraded_bit_identical": False,
        "leaked_segments": None,
    }
    segments_before = set(shm_transport.leaked_segments())
    with tempfile.TemporaryDirectory(prefix="rftc-soak-ref-") as ref_dir, \
            tempfile.TemporaryDirectory(prefix="rftc-soak-chaos-") as chaos_dir:
        print(f"reference: {n_jobs} fault-free jobs ...")
        reference = reference_results(n_jobs, n_traces, chunk_size, ref_dir)
        print(f"chaos: {n_jobs} jobs with injected system faults ...")
        submitted = chaos_service_phase(
            n_jobs, n_traces, chunk_size, chaos_dir, stats, reference
        )
        print("chaos: tearing the journal tail across a restart ...")
        torn_journal_phase(chaos_dir, submitted, stats)
    print("chaos: shared-memory allocation failure mid-campaign ...")
    shm_chaos_phase(max(800, 4 * chunk_size), min(chunk_size * 5, 400), stats)

    leaked = sorted(set(shm_transport.leaked_segments()) - segments_before)
    stats["leaked_segments"] = leaked
    check(not leaked, f"leaked /dev/shm segments: {leaked}")
    check(stats["enospc_failed_jobs"] > 0, "no job exercised the ENOSPC path")
    check(stats["bit_identical_results"] > 0, "no surviving job was audited")
    return stats


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Campaign-service chaos soak (system faults)"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI budget: 12 jobs instead of 48",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="campaigns per phase (default 48, quick 12)",
    )
    parser.add_argument(
        "--traces", type=int, default=40,
        help="traces per campaign (default 40; two chunks)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=20,
        help="engine chunk size (default 20)",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON report here"
    )
    args = parser.parse_args(argv)
    n_jobs = args.jobs if args.jobs else (12 if args.quick else 48)
    started = time.perf_counter()
    try:
        stats = run_soak(n_jobs, args.traces, args.chunk_size)
    except SoakFailure as exc:
        print(f"SOAK FAILED: {exc}", file=sys.stderr)
        return 1
    report = {
        "schema": SCHEMA,
        "n_jobs": n_jobs,
        "traces_per_job": args.traces,
        "chunk_size": args.chunk_size,
        "wall_seconds": time.perf_counter() - started,
        "stats": stats,
    }
    print(
        f"soak clean in {report['wall_seconds']:.1f} s: "
        f"{stats['enospc_failed_jobs']} ENOSPC failures contained, "
        f"{stats['bit_identical_results']} results bit-identical, "
        f"{stats['sheds_seen']} sheds honoured, zero stuck jobs, "
        f"zero leaked segments, zero quota drift"
    )
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
