"""Sec. 7 text: RFTC(3, P) resists all four attacks.

The paper collected four million traces for each RFTC(3, P) build and none
of CPA / PCA-CPA / DTW-CPA / FFT-CPA recovered the key.  At model scale the
assertion is the same: no attack reaches disclosure at the benchmark
budget, for the smallest and largest P alike.
"""

from benchmarks._budget import run_once, scaled
from repro.experiments.figures import m3_resistance_data
from repro.experiments.reporting import format_table

P_VALUES = (4, 1024)


def test_rftc_m3_resists_all_attacks(benchmark):
    n = scaled(8000)

    def run():
        return m3_resistance_data(
            p_values=P_VALUES,
            n_traces=n,
            trace_counts=(n,),
            n_repeats=4,
            seed=3,
        )

    results = run_once(benchmark, run)

    print()
    print(f"RFTC(3, P) at {n} traces (paper: 4,000,000; no disclosure)")
    rows = []
    for p in P_VALUES:
        row = [p]
        for curve in results[p].curves.values():
            row.append(f"{curve.success_rates[-1]:.2f}")
        rows.append(row)
    print(
        format_table(
            ["P"] + [f"{a} SR" for a in results[P_VALUES[0]].curves], rows
        )
    )

    for p in P_VALUES:
        summary = results[p].disclosure_summary()
        for attack, disclosed in summary.items():
            assert disclosed is None, f"{attack} broke RFTC(3, {p})"
