"""Sec. 8's proposed future work, carried out: RAM and Sliding-Window CPA
against RFTC.

The paper closes by proposing to test the Rapid Alignment Method [16] and
Sliding-Window CPA [8] against RFTC.  This benchmark runs both (plus the
original battery's plain CPA as the anchor) against the unprotected core,
RFTC(1, 4) and RFTC(3, 64):

* RAM realigns *rigid* shifts only, so it restores nothing against
  per-round frequency randomization;
* Sliding-Window CPA trades time resolution for misalignment tolerance —
  it out-performs plain CPA against small-P RFTC but large windows drown
  in algorithmic noise long before they span RFTC's completion spread.
"""


from benchmarks._budget import run_once, scaled
from repro.attacks.cpa import cpa_byte
from repro.attacks.models import expand_last_round_key
from repro.attacks.sliding_window import sliding_window_cpa
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import build_rftc, build_unprotected
from repro.power.acquisition import AcquisitionCampaign
from repro.preprocess import RapidAligner


def _ranks(scenario, seed, n):
    ts = AcquisitionCampaign(scenario.device, seed=seed).collect(n)
    rk10 = expand_last_round_key(ts.key)
    plain = cpa_byte(ts.traces, ts.ciphertexts, 0).rank_of(rk10[0])
    ram = cpa_byte(
        RapidAligner()(ts.traces), ts.ciphertexts, 0
    ).rank_of(rk10[0])
    sw = (
        sliding_window_cpa(ts.traces, ts.ciphertexts, width=24, step=4)
        .byte_results[0]
        .rank_of(rk10[0])
    )
    return {"cpa": plain, "ram-cpa": ram, "sw-cpa": sw}


def test_future_attacks_ram_and_sliding_window(benchmark):
    n = scaled(6000)

    def run():
        return {
            "unprotected": _ranks(build_unprotected(), 91, min(n, 3000)),
            "RFTC(1, 4)": _ranks(build_rftc(1, 4, seed=92), 93, n),
            "RFTC(3, 64)": _ranks(build_rftc(3, 64, seed=94), 95, n),
        }

    out = run_once(benchmark, run)
    print()
    rows = [
        (name, r["cpa"], r["ram-cpa"], r["sw-cpa"])
        for name, r in out.items()
    ]
    print(
        format_table(
            ["target", "CPA rank", "RAM-CPA rank", "SW-CPA rank"], rows
        )
    )
    print(
        "Sec. 8 follow-through: RAM cannot undo per-round randomization; "
        "sliding windows help against small P but not the full design."
    )

    # All three break the unprotected core.
    assert max(out["unprotected"].values()) == 0
    # The flagship-direction build resists all three.
    assert min(out["RFTC(3, 64)"].values()) > 0
