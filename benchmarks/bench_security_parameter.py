"""Table 1's security parameter (Eq. 1), measured on a common bench.

The paper transcribes each related work's *self-reported* security
parameter — which reflects how hard each original evaluation tried, not
intrinsic strength ([9] gets 6 because its thesis only attacked to 3M on a
600k-trace-unprotected target).  This benchmark instead measures every
countermeasure with the same streamed plain-CPA yardstick on the same
channel, which is the comparison Eq. 1 wants.

Expected ordering: the three few-delay countermeasures (phase shifting,
RCDD, RDI) fall within the budget; RFTC survives it, giving a
lower-bound parameter that dominates every disclosed one.
"""

from benchmarks._budget import run_once, scaled
from repro.experiments.reporting import format_table
from repro.experiments.security_parameter import measure_security_parameters

PAPER = {
    "RDI [14]": ">=500",
    "RCDD [3]": ">=226",
    "Phase shifted clocks [10]": "100",
    "iPPAP [19]": "NA",
    "Clock randomization [9]": ">=6",
    "RFTC(3, 64)": ">=2000 (for (3,1024))",
}


def test_security_parameter_measured(benchmark):
    budget = scaled(120_000)

    rows = run_once(
        benchmark, lambda: measure_security_parameters(budget=budget)
    )
    print()
    print(
        f"Eq. 1 security parameter, streamed plain CPA to {budget} traces "
        f"(unprotected falls at {rows[0].unprotected_traces})"
    )
    print(
        format_table(
            ["countermeasure", "disclosed at", "parameter", "paper (self-reported)"],
            [
                (
                    r.name,
                    r.disclosure_traces if r.disclosure_traces else "not disclosed",
                    r.render(),
                    PAPER.get(r.name, "NA"),
                )
                for r in rows
            ],
        )
    )
    by_name = {r.name: r for r in rows}
    rftc = by_name["RFTC(3, 64)"]
    # RFTC survives the budget; the weak baselines do not.
    assert rftc.is_lower_bound
    disclosed = [r for r in rows if not r.is_lower_bound]
    assert len(disclosed) >= 2
    assert all(rftc.parameter >= r.parameter for r in disclosed)