"""Paper-scale plain CPA via streaming accumulation (Fig. 4-a's long tail).

The paper's one result out of reach at the default 8k-trace budgets is the
plain-CPA break of RFTC(1, 4) at ~700,000 hardware traces.  The streaming
CPA engine makes the equivalent run feasible here: traces are synthesized
and folded into running sums in batches — constant memory, ~10k traces/s —
until the weakest build falls, while the same budget leaves RFTC(3, 64)
untouched.

Paper ratio: 700k / 2k unprotected = 350x.  Model ratio: ~100k / 2k = 50x —
same order, with the gap explained by the synthetic channel's sharper
class structure (DESIGN.md §6).
"""


from benchmarks._budget import run_once, scaled
from repro.attacks.incremental import IncrementalCpa
from repro.attacks.models import expand_last_round_key
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import build_rftc
from repro.power.acquisition import AcquisitionCampaign

BATCH = 15000


def _stream_attack(scenario, seed, total, checkpoints):
    campaign = AcquisitionCampaign(scenario.device, seed=seed)
    rk10 = expand_last_round_key(scenario.device.key)
    inc = IncrementalCpa(byte_index=0)
    history = []
    collected = 0
    for target in checkpoints:
        while collected < target:
            n = min(BATCH, target - collected)
            ts = campaign.collect(n)
            inc.update(ts.traces, ts.ciphertexts)
            collected += n
        history.append((collected, inc.result().rank_of(rk10[0])))
    return history


def test_paper_scale_streaming_cpa(benchmark):
    total = scaled(150_000)
    checkpoints = [c for c in (25_000, 50_000, 100_000, 150_000) if c <= total]
    if checkpoints[-1] != total:
        checkpoints.append(total)

    def run():
        weak = _stream_attack(
            build_rftc(1, 4, seed=92), 93, total, checkpoints
        )
        strong = _stream_attack(
            build_rftc(3, 256, seed=94), 95, total, checkpoints
        )
        return weak, strong

    weak, strong = run_once(benchmark, run)
    print()
    print(f"Streaming plain CPA, batches of {BATCH} (constant memory)")
    rows = [
        (n_w, r_w, r_s)
        for (n_w, r_w), (_, r_s) in zip(weak, strong)
    ]
    print(
        format_table(
            ["traces", "RFTC(1,4) rank", "RFTC(3,256) rank"], rows
        )
    )
    print(
        "paper: plain CPA breaks RFTC(1, 4) at ~700k traces and never "
        "breaks RFTC(3, .) within 4M"
    )
    # The weakest build falls within the budget; the strong one does not.
    assert weak[-1][1] == 0
    assert strong[-1][1] > 0