"""Sec. 7's baseline: attacks against the unprotected AES.

The paper: CPA, PCA-CPA and DTW-CPA disclose the key in ~2,000 traces;
FFT-CPA needs ~8,000.  The model's channel is calibrated so the same
numbers come out at the same order of magnitude.
"""

from benchmarks._budget import run_once, scaled
from repro.experiments.figures import unprotected_baseline_data
from repro.experiments.reporting import render_attack_suite

PAPER = {"cpa": 2000, "pca-cpa": 2000, "dtw-cpa": 2000, "fft-cpa": 8000}


def test_unprotected_attack_baseline(benchmark):
    n = scaled(8000)

    def run():
        return unprotected_baseline_data(
            n_traces=n,
            trace_counts=tuple(
                c for c in (500, 1000, 2000, 4000, 8000) if c <= n
            ),
            n_repeats=6,
            seed=11,
        )

    result = run_once(benchmark, run)
    print()
    print(render_attack_suite(result))
    print(f"paper traces-to-disclosure: {PAPER}")

    summary = result.disclosure_summary()
    # Shape targets: plain CPA breaks within ~2k traces (paper: ~2,000) and
    # every attack breaks within the 8k budget.
    assert summary["cpa"] is not None and summary["cpa"] <= 4000
    assert summary["pca-cpa"] is not None
    assert summary["dtw-cpa"] is not None
