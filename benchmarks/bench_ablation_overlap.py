"""Ablation: what the overlap-free duplicate search buys (Sec. 5).

The paper's worked example: the sets {12.012, 40.240, 30.744} MHz and
{24.024, 20.120, 30.744} MHz both realize a 396.1 ns completion, so power
traces from *different* configurations align at the last round.  This
benchmark builds a whole plan out of such harmonically-related set pairs,
measures how much completion-time mass collides, and compares against the
planner's overlap-free output — then shows the aligned mass is exactly what
a completion-time-grouping adversary gets to attack.
"""

import numpy as np

from benchmarks._budget import run_once, scaled
from repro.experiments.reporting import format_table
from repro.rftc import RFTCParams
from repro.rftc.planner import FrequencyPlan, plan_overlap_free

P = 16
PARAMS = RFTCParams(m_outputs=3, p_configs=P)


def _adversarial_plan() -> FrequencyPlan:
    """P/2 base sets plus their harmonic twins (guaranteed overlaps).

    A twin halves one frequency and doubles another's round share — the
    construction of the paper's 396.1 ns example — so every base/twin pair
    shares many completion times exactly.
    """
    rng = np.random.default_rng(5)
    sets = []
    for _ in range(P // 2):
        f1 = rng.uniform(12.0, 16.0)
        f2 = rng.uniform(32.0, 44.0)
        f3 = rng.uniform(24.0, 31.0)
        sets.append([f1, f2, f3])
        sets.append([2 * f1, f2 / 2, f3])  # harmonic twin
    return FrequencyPlan(
        params=PARAMS, sets_mhz=np.array(sets), method="naive-grid"
    )


def _cross_set_aligned_mass(
    sets_mhz: np.ndarray, n: int, rng: np.random.Generator
) -> float:
    """Expected number of traces from *other* configurations sharing a
    random trace's exact completion time.

    Within-set repeats exist in any design (compositions repeat); the
    quantity the duplicate search eliminates is alignment *across* sets —
    a grouping adversary pooling those traces gets a coherent, aligned
    subpopulation spanning configurations.
    """
    p, m = sets_mhz.shape
    periods = 1000.0 / sets_mhz
    set_idx = rng.integers(0, p, size=n)
    clock_idx = rng.integers(0, m, size=(n, 10))
    times = periods[set_idx[:, None], clock_idx].sum(axis=1)
    keys = np.round(times / 1e-4).astype(np.int64)
    order = np.lexsort((set_idx, keys))
    keys_s, sets_s = keys[order], set_idx[order]
    total = 0
    start = 0
    for stop in np.flatnonzero(np.diff(keys_s)) + 1:
        bucket_sets = sets_s[start:stop]
        size = stop - start
        if size > 1:
            _, counts = np.unique(bucket_sets, return_counts=True)
            total += size * size - (counts * counts).sum()
        start = stop
    bucket_sets = sets_s[start:]
    if bucket_sets.size > 1:
        _, counts = np.unique(bucket_sets, return_counts=True)
        total += bucket_sets.size**2 - (counts * counts).sum()
    return float(total / n)


def test_ablation_overlap_search(benchmark):
    n = scaled(100_000)

    def run():
        adversarial = _adversarial_plan()
        careful = plan_overlap_free(PARAMS, rng=np.random.default_rng(41))
        rng = np.random.default_rng(43)
        return {
            "dup_bad": adversarial.duplicate_count(1e-4),
            "dup_good": careful.duplicate_count(1e-4),
            "mass_bad": _cross_set_aligned_mass(adversarial.sets_mhz, n, rng),
            "mass_good": _cross_set_aligned_mass(careful.sets_mhz, n, rng),
        }

    out = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["plan", "exact duplicate times", "cross-set aligned mass/trace"],
            [
                ("harmonic overlaps", out["dup_bad"], f"{out['mass_bad']:.2f}"),
                ("overlap-free", out["dup_good"], f"{out['mass_good']:.2f}"),
            ],
        )
    )
    print(
        "Sec. 5: overlapping completion times re-align the secret round "
        "across configurations; the duplicate search removes them."
    )
    # Each base/twin pair shares the compositions (n, 2n, 10-3n), n = 0..3,
    # so the adversarial plan carries ~4 exact duplicates per pair.
    assert out["dup_bad"] >= 20
    assert out["dup_good"] == 0
    assert out["mass_bad"] > 10 * max(out["mass_good"], 0.01)
