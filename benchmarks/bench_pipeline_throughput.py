"""Pipeline throughput: traces/sec through the streaming campaign engine.

The paper's 4M-trace evaluations are only reachable if acquisition keeps
the hardware busy; this benchmark measures the ``repro.pipeline`` engine
end to end — chunked acquisition, store writes, and a streaming CPA
consumer — at 1 worker and at a small pool, printing traces/sec and the
per-stage wall-clock split.  On multi-core hosts the pool column should
approach linear scaling; the numbers also confirm the engine's memory
stays bounded by the chunk size at any campaign length.

Two modes (mirroring ``bench_kernels.py``):

* ``pytest benchmarks/bench_pipeline_throughput.py --benchmark-only`` —
  the worker-scaling table via pytest-benchmark.
* ``python benchmarks/bench_pipeline_throughput.py [--quick] [--out F]``
  — a machine-readable throughput report, including the observability
  overhead: the measured per-chunk obs cost as a fraction of the
  per-chunk wall (the obs layer's <2% acceptance bound, checked with
  ``--check-obs-overhead``; see ``docs/observability.md``).
"""

import argparse
import json
import sys
import time

import numpy as np

from repro.experiments.reporting import format_table
from repro.pipeline import CampaignSpec, CpaStreamConsumer, StreamingCampaign

CHUNK = 2000
WORKER_COUNTS = (1, 2, 4)

SCHEMA = "rftc-bench-pipeline/1"


def _run_campaign(workers: int, n: int, obs=None):
    spec = CampaignSpec(target="rftc", m_outputs=1, p_configs=16, plan_seed=7)
    engine = StreamingCampaign(
        spec, chunk_size=CHUNK, workers=workers, seed=3, obs=obs
    )
    return engine.run(n, consumers=[CpaStreamConsumer(byte_index=0)])


# --------------------------------------------------------------------------
# Script mode: JSON throughput report + observability overhead check.
# --------------------------------------------------------------------------


def _best_wall(workers: int, n: int, rounds: int, obs_factory=None):
    """Best-of-``rounds`` wall seconds for one campaign configuration."""
    best = float("inf")
    for _ in range(rounds):
        obs = obs_factory() if obs_factory is not None else None
        t0 = time.perf_counter()
        _run_campaign(workers, n, obs=obs)
        best = min(best, time.perf_counter() - t0)
    return best


def _per_chunk_obs_seconds(reps: int = 200) -> float:
    """Best-of-5 cost of one chunk's worth of observability work.

    Replays the exact per-chunk sequence the instrumented engine and
    worker run — worker bundle, five stage spans with latency observes,
    snapshot + drain, parent fold/consume spans, snapshot merge and the
    per-chunk counters — in a tight loop.  Unlike an end-to-end A/B of
    two campaign walls, this stays stable on noisy shared runners, so
    it is what ``--check-obs-overhead`` gates.
    """
    from repro.obs import Observability

    stages = ("schedule", "crypto", "leakage", "synth", "capture")
    best = float("inf")
    for _ in range(5):
        parent = Observability.create()
        t0 = time.perf_counter()
        for index in range(reps):
            worker = Observability.create(origin=f"worker:chunk-{index}")
            for stage in stages:
                with worker.tracer.span("acquire_stage", stage=stage):
                    pass
                worker.metrics.observe(
                    "acquisition_stage_seconds", 1e-3, stage=stage
                )
            worker.metrics.inc("acquisition_traces_total", CHUNK)
            payload = {"metrics": worker.metrics.snapshot(),
                       "events": worker.tracer.drain()}
            with parent.tracer.span("fold_chunk", chunk=index,
                                    traces=CHUNK, replayed=False):
                with parent.tracer.span("consume", consumer="cpa[0]"):
                    pass
                parent.metrics.observe("campaign_consume_seconds", 1e-3)
            parent.metrics.merge_snapshot(payload["metrics"])
            parent.tracer.extend(payload["events"])
            parent.metrics.inc("campaign_chunks_total", phase="fresh")
            parent.metrics.inc("campaign_traces_total", CHUNK)
            parent.metrics.observe("campaign_chunk_acquire_seconds", 1e-2)
            parent.metrics.set_gauge("campaign_done_traces", CHUNK * index)
        best = min(best, (time.perf_counter() - t0) / reps)
    return best


def run_suite(n: int, rounds: int) -> dict:
    """Measure worker scaling and the observability overhead."""
    from repro.obs import Observability

    report = {"schema": SCHEMA, "n_traces": n, "chunk_size": CHUNK,
              "throughput": {}}
    for workers in WORKER_COUNTS:
        wall = _best_wall(workers, n, rounds)
        report["throughput"][str(workers)] = {
            "wall_seconds": wall,
            "traces_per_second": n / wall,
        }
        print(f"workers={workers}: {n / wall:,.0f} traces/s")
    # End-to-end A/B walls are reported for humans, but run-to-run noise
    # on shared machines dwarfs the true cost, so the gated number is
    # the measured per-chunk obs cost over the per-chunk wall.
    obs_rounds = max(rounds, 3)
    base = _best_wall(1, n, obs_rounds)
    observed = _best_wall(1, n, obs_rounds, obs_factory=Observability.create)
    per_chunk_obs = _per_chunk_obs_seconds()
    per_chunk_wall = base / max(1, -(-n // CHUNK))
    report["observability"] = {
        "disabled_wall_seconds": base,
        "enabled_wall_seconds": observed,
        "enabled_overhead_fraction": (observed - base) / base,
        "per_chunk_obs_seconds": per_chunk_obs,
        "per_chunk_wall_seconds": per_chunk_wall,
        "obs_cost_fraction": per_chunk_obs / per_chunk_wall,
    }
    print(
        f"observability: {per_chunk_obs * 1e6:.0f} us per chunk "
        f"= {per_chunk_obs / per_chunk_wall:.3%} of the "
        f"{per_chunk_wall * 1e3:.0f} ms chunk wall "
        f"(end-to-end A/B: {(observed - base) / base:+.2%}, noisy)"
    )
    return report


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Streaming-pipeline throughput benchmark"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI budget: fewer traces, single timing round",
    )
    parser.add_argument(
        "--traces", type=int, default=None,
        help="traces per campaign (default 20000, quick 4000)",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON report here"
    )
    parser.add_argument(
        "--check-obs-overhead", type=float, default=None, metavar="FRAC",
        help="fail (exit 1) when the per-chunk observability cost exceeds "
             "this fraction of the per-chunk wall (the acceptance bound "
             "is 0.02)",
    )
    args = parser.parse_args(argv)
    n = args.traces if args.traces else (4000 if args.quick else 20_000)
    rounds = 1 if args.quick else 3
    report = run_suite(n, rounds)
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    if args.check_obs_overhead is not None:
        overhead = report["observability"]["obs_cost_fraction"]
        if overhead > args.check_obs_overhead:
            print(
                f"REGRESSION: observability overhead {overhead:.2%} exceeds "
                f"{args.check_obs_overhead:.2%}",
                file=sys.stderr,
            )
            return 1
        print("observability overhead gate: ok")
    return 0


def test_pipeline_throughput_vs_workers(benchmark):
    # Imported here so script mode works without the benchmarks package
    # on sys.path (``python benchmarks/bench_pipeline_throughput.py``).
    from benchmarks._budget import run_once, scaled

    n = scaled(20_000)

    def run():
        return [_run_campaign(w, n) for w in WORKER_COUNTS]

    reports = run_once(benchmark, run)

    rows = [
        (
            r.workers,
            r.n_traces,
            r.n_chunks,
            f"{r.traces_per_second:.0f}",
            f"{r.wall_seconds:.2f}",
            f"{r.acquire_seconds:.2f}",
            f"{r.stage_seconds.get('synth', 0.0):.2f}",
            f"{r.consume_seconds:.2f}",
        )
        for r in reports
    ]
    print()
    print(f"Streaming pipeline, RFTC(1, 16), chunks of {CHUNK}:")
    print(
        format_table(
            ["workers", "traces", "chunks", "traces/s", "wall s",
             "acquire s", "synth s", "cpa s"],
            rows,
        )
    )
    # Acquisition dominated by trace synthesis?  The stage split says.
    synth_total = sum(r.stage_seconds.get("synth", 0.0) for r in reports)
    cpa_total = sum(r.consume_seconds for r in reports)
    print(
        f"time split across runs: synth {synth_total:.2f}s, "
        f"cpa consume {cpa_total:.2f}s"
    )
    # Worker count must never change the science, only the wall clock.
    peaks = [r.results["cpa[0]"].peak_corr for r in reports]
    for other in peaks[1:]:
        np.testing.assert_array_equal(peaks[0], other)
    print("consumer results identical across worker counts: yes")


if __name__ == "__main__":
    sys.exit(main())
