"""Pipeline throughput: traces/sec through the streaming campaign engine.

The paper's 4M-trace evaluations are only reachable if acquisition keeps
the hardware busy; this benchmark measures the ``repro.pipeline`` engine
end to end — chunked acquisition, store writes, and a streaming CPA
consumer — at 1 worker and at a small pool, printing traces/sec and the
per-stage wall-clock split.  On multi-core hosts the pool column should
approach linear scaling; the numbers also confirm the engine's memory
stays bounded by the chunk size at any campaign length.
"""

import numpy as np

from benchmarks._budget import run_once, scaled
from repro.experiments.reporting import format_table
from repro.pipeline import CampaignSpec, CpaStreamConsumer, StreamingCampaign

CHUNK = 2000
WORKER_COUNTS = (1, 2, 4)


def _run_campaign(workers: int, n: int):
    spec = CampaignSpec(target="rftc", m_outputs=1, p_configs=16, plan_seed=7)
    engine = StreamingCampaign(spec, chunk_size=CHUNK, workers=workers, seed=3)
    return engine.run(n, consumers=[CpaStreamConsumer(byte_index=0)])


def test_pipeline_throughput_vs_workers(benchmark):
    n = scaled(20_000)

    def run():
        return [_run_campaign(w, n) for w in WORKER_COUNTS]

    reports = run_once(benchmark, run)

    rows = [
        (
            r.workers,
            r.n_traces,
            r.n_chunks,
            f"{r.traces_per_second:.0f}",
            f"{r.wall_seconds:.2f}",
            f"{r.acquire_seconds:.2f}",
            f"{r.stage_seconds.get('synth', 0.0):.2f}",
            f"{r.consume_seconds:.2f}",
        )
        for r in reports
    ]
    print()
    print(f"Streaming pipeline, RFTC(1, 16), chunks of {CHUNK}:")
    print(
        format_table(
            ["workers", "traces", "chunks", "traces/s", "wall s",
             "acquire s", "synth s", "cpa s"],
            rows,
        )
    )
    # Acquisition dominated by trace synthesis?  The stage split says.
    synth_total = sum(r.stage_seconds.get("synth", 0.0) for r in reports)
    cpa_total = sum(r.consume_seconds for r in reports)
    print(
        f"time split across runs: synth {synth_total:.2f}s, "
        f"cpa consume {cpa_total:.2f}s"
    )
    # Worker count must never change the science, only the wall clock.
    peaks = [r.results["cpa[0]"].peak_corr for r in reports]
    for other in peaks[1:]:
        np.testing.assert_array_equal(peaks[0], other)
    print("consumer results identical across worker counts: yes")
