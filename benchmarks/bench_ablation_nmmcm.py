"""Ablation: N = 2 MMCMs (ping-pong) vs N = 1 (stall during reconfiguration).

Sec. 4's architectural argument: with N MMCMs, one reconfigures while
another drives, so the 34 us reconfiguration never stalls the cipher.  With
N = 1 every set swap costs a full reconfiguration of dead time.  The model
quantifies the throughput gap.
"""

import numpy as np

from benchmarks._budget import run_once, scaled
from repro.experiments.reporting import format_table
from repro.rftc import RFTCController, RFTCParams
from repro.rftc.planner import plan_overlap_free


def _throughput(n_mmcms: int, n: int):
    params = RFTCParams(m_outputs=3, p_configs=64, n_mmcms=n_mmcms)
    plan = plan_overlap_free(params, rng=np.random.default_rng(53))
    ctrl = RFTCController(params, plan, rng=np.random.default_rng(54))
    sched = ctrl.schedule(n)
    busy_ns = sched.completion_times_ns().sum()
    stall_ns = sched.metadata["stall_ns"].sum()
    return {
        "encryptions_per_ms": n / ((busy_ns + stall_ns) * 1e-6),
        "stall_fraction": stall_ns / (busy_ns + stall_ns),
        "reconfig_us": ctrl.reconfiguration_seconds * 1e6,
        "swaps": ctrl.pipeline.swap_count,
    }


def test_ablation_mmcm_count(benchmark):
    n = scaled(20000)

    def run():
        return {1: _throughput(1, n), 2: _throughput(2, n)}

    out = run_once(benchmark, run)
    print()
    rows = [
        (
            f"N = {k}",
            f"{v['encryptions_per_ms']:.0f}",
            f"{100 * v['stall_fraction']:.1f}%",
            f"{v['reconfig_us']:.1f}",
            v["swaps"],
        )
        for k, v in out.items()
    ]
    print(
        format_table(
            ["MMCMs", "enc/ms", "stall time", "reconfig us", "set swaps"], rows
        )
    )
    # The dual-MMCM pipeline hides reconfiguration entirely.
    assert out[2]["stall_fraction"] == 0.0
    assert out[1]["stall_fraction"] > 0.05
    assert out[2]["encryptions_per_ms"] > 1.05 * out[1]["encryptions_per_ms"]
