"""Campaign-service load test: queue 1000+ campaigns, drain, measure.

Drives a real :class:`repro.service.CampaignService` behind its HTTP
front-end the way a busy lab would: four tenants flood the queue with
distinct small campaigns, the scheduler drains them over a shared worker
budget, and the harness reports submit latency, queue wait, run time and
submit-to-done latency as p50/p99 — the numbers ``BENCH_service.json``
commits so service regressions show up in review diffs.

A second phase resubmits a slice of the identical specs and *requires*
every one to be answered from the result cache (exit 1 otherwise), so
the committed benchmark doubles as an end-to-end cache correctness gate.

Modes::

    python benchmarks/bench_service_load.py            # 1000 jobs
    python benchmarks/bench_service_load.py --quick    # CI budget
    python benchmarks/bench_service_load.py --out BENCH_service.json
"""

import argparse
import json
import math
import sys
import tempfile
import time

from repro.pipeline import CampaignSpec
from repro.service import CampaignService
from repro.service.client import ServiceClient
from repro.service.server import CampaignServer

SCHEMA = "rftc-bench-service/1"
TENANTS = ("alice", "bob", "carol", "dave")


def percentile(values, q):
    """Nearest-rank percentile of ``values`` (None when empty)."""
    if not values:
        return None
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def summarize(values):
    return {
        "p50_seconds": percentile(values, 0.50),
        "p99_seconds": percentile(values, 0.99),
        "max_seconds": max(values) if values else None,
    }


def run_load(n_jobs, worker_budget, n_traces, chunk_size, data_dir):
    spec = CampaignSpec(target="rftc", m_outputs=1, p_configs=16, plan_seed=7)
    service = CampaignService(data_dir, worker_budget=worker_budget)
    service.start()
    server = CampaignServer(service)
    host, port = server.start()
    client = ServiceClient(host, port)
    try:
        # Phase 1: flood the queue.  Distinct seeds -> no cache hits, so
        # every job exercises the full dispatch -> engine -> finalize path.
        job_ids = []
        submit_latency = []
        t0 = time.perf_counter()
        for i in range(n_jobs):
            t = time.perf_counter()
            doc = client.submit(
                spec, n_traces, chunk_size=chunk_size, seed=i,
                tenant=TENANTS[i % len(TENANTS)],
            )
            submit_latency.append(time.perf_counter() - t)
            job_ids.append(doc["job_id"])
        submit_wall = time.perf_counter() - t0
        print(
            f"queued {n_jobs} campaigns in {submit_wall:.2f} s "
            f"({n_jobs / submit_wall:,.0f} submits/s over HTTP)"
        )

        # Phase 2: drain.
        if not service.join(timeout=max(600.0, n_jobs)):
            raise RuntimeError("drain timed out")
        drain_wall = time.perf_counter() - t0

        jobs = [service.store.get(job_id) for job_id in job_ids]
        bad = [j.job_id for j in jobs if j.state != "done"]
        if bad:
            raise RuntimeError(f"{len(bad)} jobs did not finish done: {bad[:5]}")
        queue_s = [j.queue_seconds() for j in jobs]
        run_s = [j.wall_seconds() for j in jobs]
        e2e_s = [j.submit_to_done_seconds() for j in jobs]
        print(
            f"drained {n_jobs} campaigns in {drain_wall:.2f} s "
            f"({n_jobs / drain_wall:,.0f} jobs/s, workers={worker_budget}); "
            f"queue p50={percentile(queue_s, 0.5):.3f}s "
            f"p99={percentile(queue_s, 0.99):.3f}s"
        )

        # Phase 3: identical resubmissions must all be cache hits.
        n_resubmit = min(n_jobs, 200)
        hit_latency = []
        for i in range(n_resubmit):
            t = time.perf_counter()
            doc = client.submit(
                spec, n_traces, chunk_size=chunk_size, seed=i,
                tenant=TENANTS[i % len(TENANTS)],
            )
            hit_latency.append(time.perf_counter() - t)
            if not (doc["cached"] and doc["state"] == "done"):
                raise RuntimeError(
                    f"resubmission {doc['job_id']} missed the cache"
                )
        hits = client.counter_value("service_cache_hits_total")
        if hits != n_resubmit:
            raise RuntimeError(
                f"service_cache_hits_total={hits}, expected {n_resubmit}"
            )
        print(
            f"resubmitted {n_resubmit} identical specs: all cache hits, "
            f"p50={percentile(hit_latency, 0.5) * 1e3:.1f} ms"
        )

        return {
            "schema": SCHEMA,
            "n_jobs": n_jobs,
            "n_tenants": len(TENANTS),
            "worker_budget": worker_budget,
            "traces_per_job": n_traces,
            "chunk_size": chunk_size,
            "submit": {
                "wall_seconds": submit_wall,
                "submits_per_second": n_jobs / submit_wall,
                "http_latency": summarize(submit_latency),
            },
            "drain": {
                "wall_seconds": drain_wall,
                "jobs_per_second": n_jobs / drain_wall,
                "queue_seconds": summarize(queue_s),
                "run_seconds": summarize(run_s),
                "submit_to_done_seconds": summarize(e2e_s),
            },
            "cache": {
                "resubmitted": n_resubmit,
                "hits": int(hits),
                "hit_latency": summarize(hit_latency),
            },
        }
    finally:
        server.stop()
        service.shutdown()


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Campaign-service load-test harness"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI budget: 120 jobs instead of 1000",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="campaigns to queue (default 1000, quick 120)",
    )
    parser.add_argument(
        "--worker-budget", type=int, default=4,
        help="concurrent campaign executions (default 4)",
    )
    parser.add_argument(
        "--traces", type=int, default=200,
        help="traces per campaign (default 200)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=100,
        help="engine chunk size (default 100)",
    )
    parser.add_argument(
        "--out", default=None, help="write the JSON report here"
    )
    args = parser.parse_args(argv)
    n_jobs = args.jobs if args.jobs else (120 if args.quick else 1000)
    with tempfile.TemporaryDirectory(prefix="rftc-service-load-") as tmp:
        try:
            report = run_load(
                n_jobs, args.worker_budget, args.traces, args.chunk_size, tmp
            )
        except RuntimeError as exc:
            print(f"FAILED: {exc}", file=sys.stderr)
            return 1
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
