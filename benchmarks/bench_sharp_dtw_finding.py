"""Reproduction finding: sharp-reference DTW weakens RFTC on clean channels.

The paper (and the elastic-alignment literature it cites) aligns traces to
a *mean* reference and finds DTW powerless against M >= 2 / large-P RFTC.
This reproduction's DTW defaults to aligning against one *concrete* trace —
a sharper anchor — and on the synthetic channel that upgrade defeats even
the flagship-direction builds at modest trace counts: per-round warping is
the correct inverse of per-round clock randomization whenever the round
pulses stay individually recognizable.

The finding's boundary is also measurable: raising the channel noise
degrades the warp (the DP path follows noise), recovering the paper's
verdict.  On real hardware, intra-round structure and lower SNR push in the
same direction — which is the most plausible reconciliation of this model
result with the paper's measured one.
"""


from benchmarks._budget import run_once, scaled
from repro.attacks.cpa import cpa_byte
from repro.attacks.models import expand_last_round_key
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import build_rftc
from repro.power.acquisition import AcquisitionCampaign
from repro.power.synth import TraceSynthesizer
from repro.preprocess import DtwAligner


def test_sharp_reference_dtw_finding(benchmark):
    n = scaled(10_000)

    def run():
        rows = []
        for label, noise, taps in (
            ("paper-SNR channel", 2.0, ((0.0, 1.0),)),
            ("3x noise", 6.0, ((0.0, 1.0),)),
            ("intra-round substructure", 2.0, ((0.0, 0.6), (7.0, 0.4))),
        ):
            scenario = build_rftc(3, 64, seed=241, noise_std=noise)
            scenario.device.synthesizer = TraceSynthesizer(taps=taps)
            ts = AcquisitionCampaign(scenario.device, seed=242).collect(n)
            rk10 = expand_last_round_key(ts.key)
            ranks = {}
            for reference in ("mean", "first"):
                aligner = DtwAligner(band=48, decimate=2, reference=reference)
                ranks[reference] = cpa_byte(
                    aligner(ts.traces), ts.ciphertexts, 0
                ).rank_of(rk10[0])
            rows.append((label, ranks["mean"], ranks["first"]))
        return rows

    rows = run_once(benchmark, run)
    print()
    print(f"DTW-CPA rank of the true key byte vs RFTC(3, 64), {n} traces")
    print(
        format_table(
            ["channel", "mean reference (paper)", "single-trace reference"],
            rows,
        )
    )
    print(
        "finding: the sharp anchor inverts per-round randomization on a "
        "clean channel (ranks 0-21 across seeds, vs 35-108 for the mean "
        "reference); noise reliably degrades the sharp warp, intra-round "
        "substructure does so only sometimes — the countermeasure's margin "
        "against a well-anchored warp is thin on clean channels."
    )
    clean = rows[0]
    # Paper-style DTW fails; the sharpened variant at least nearly breaks.
    assert clean[1] > 8
    assert clean[2] <= 2
    # Noise degrades the sharp warp.
    noisy = rows[1]
    assert noisy[2] >= clean[2]
