"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the rows/series it reports, so a ``pytest benchmarks/
--benchmark-only`` run reads like the paper's evaluation section.

Budgets are laptop-scaled by default; set ``REPRO_BENCH_SCALE`` (a float
multiplier on trace counts) to push toward the paper's scales, e.g.::

    REPRO_BENCH_SCALE=10 pytest benchmarks/bench_fig4_m1.py --benchmark-only
"""

import os

def bench_scale() -> float:
    """Trace-count multiplier from the environment (default 1.0)."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int) -> int:
    """Apply the benchmark scale to a trace count."""
    return max(16, int(n * bench_scale()))


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark timer.

    Figure regeneration is deterministic and expensive; statistical timing
    repetition belongs to the micro-kernel benchmarks, not these.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
