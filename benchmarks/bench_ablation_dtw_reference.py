"""Ablation: DTW alignment reference — single trace vs mean trace.

Classic elastic-alignment folklore aligns to the mean trace; against a
clock-randomized target the mean is a blur of incompatible completion
times and the warp has nothing sharp to lock onto.  Aligning to one
concrete trace restores the attack against small-P RFTC.  This is the
design choice behind DtwAligner's default and is worth a number.
"""


from benchmarks._budget import run_once, scaled
from repro.attacks.cpa import cpa_byte
from repro.attacks.models import expand_last_round_key
from repro.experiments.reporting import format_table
from repro.experiments.scenarios import build_rftc
from repro.power.acquisition import AcquisitionCampaign
from repro.preprocess import DtwAligner


def test_ablation_dtw_reference(benchmark):
    n = scaled(8000)

    def run():
        scenario = build_rftc(1, 4, seed=83)
        ts = AcquisitionCampaign(scenario.device, seed=84).collect(n)
        rk10 = expand_last_round_key(ts.key)
        ranks = {}
        for reference in ("first", "mean"):
            aligner = DtwAligner(reference=reference)
            result = cpa_byte(aligner(ts.traces), ts.ciphertexts, 0)
            ranks[reference] = result.rank_of(rk10[0])
        return ranks

    ranks = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["DTW reference", "CPA rank of true byte vs RFTC(1, 4)"],
            [(k, v) for k, v in ranks.items()],
        )
    )
    # The sharp single-trace anchor must make (much) more progress.
    assert ranks["first"] < ranks["mean"]
    assert ranks["first"] <= 8
