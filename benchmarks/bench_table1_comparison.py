"""Table 1: RFTC vs the related work, regenerated from the models.

Every number in the computed columns comes from the countermeasure models
(distinct completion times enumerated, time overhead measured on generated
schedules, power/area from the documented component models) — the paper's
reported values are printed alongside.
"""

from benchmarks._budget import run_once
from repro.experiments.reporting import render_table1
from repro.experiments.tables import block_ram_count, table1_rows


def test_table1_comparison(benchmark):
    rows = run_once(benchmark, lambda: table1_rows(seed=23))

    print()
    print("Table 1 (computed vs paper)")
    print(render_table1(rows))
    brams = block_ram_count(3, 1024, seed=23)
    print(f"Block RAMs for RFTC(3, 1024): {brams} (paper: 20)")

    by_name = {r.name: r for r in rows}
    rftc = by_name["RFTC(3, 1024)"]
    # The headline: ~three orders of magnitude more completion times.
    assert rftc.delays > 60000
    assert rftc.delays / by_name["Clock randomization [9]"].delays > 400
    # Overheads within the paper's ballpark.
    assert abs(rftc.time_overhead - 1.72) < 0.5
    assert abs(rftc.power_overhead - 1.48) < 0.2
    assert abs(rftc.area_overhead - 1.30) < 0.2
    assert abs(brams - 20) <= 2
